"""The sheet: a sparse grid of cells plus dependency enumeration.

A :class:`Sheet` stores cells sparsely in a dict keyed by ``(col, row)``.
Besides the value/formula accessors it provides
:meth:`Sheet.iter_dependencies`, which enumerates the raw formula-graph
edges (referenced range -> formula cell) together with their dollar-sign
cues — exactly the stream that both NoComp and TACO ingest.
"""

from __future__ import annotations

import weakref
from typing import Iterator

from ..formula.ast_nodes import Node
from ..formula.references import ReferencedRange
from ..grid.range import Range
from ..grid.ref import parse_cell
from .cell import Cell

__all__ = ["Sheet", "Dependency"]


class Dependency:
    """One raw formula-graph dependency: ``prec -> dep`` with its cue."""

    __slots__ = ("prec", "dep", "cue")

    def __init__(self, prec: Range, dep: Range, cue: str = "RR"):
        self.prec = prec
        self.dep = dep
        self.cue = cue

    def as_tuple(self) -> tuple[Range, Range]:
        return (self.prec, self.dep)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dependency):
            return NotImplemented
        return self.prec == other.prec and self.dep == other.dep

    def __hash__(self) -> int:
        return hash((self.prec, self.dep))

    def __repr__(self) -> str:
        return f"Dependency({self.prec.to_a1()} -> {self.dep.to_a1()}, cue={self.cue})"


def _coerce_pos(target) -> tuple[int, int]:
    if isinstance(target, str):
        return parse_cell(target)
    if isinstance(target, Range):
        if not target.is_cell:
            raise ValueError(f"expected a single cell, got {target.to_a1()}")
        return target.head
    col, row = target
    return (col, row)


class Sheet:
    """A sparse spreadsheet grid."""

    def __init__(self, name: str = "Sheet1"):
        self.name = name
        self._cells: dict[tuple[int, int], Cell] = {}
        # Open BatchEditSessions register here (on the sheet, not their
        # engine, so sessions from throwaway engines over the same sheet
        # are visible too); structural edits refuse to run while any is
        # open — buffered cell addresses would straddle the shift.  Weak
        # references: an abandoned session must not lock the sheet out
        # of structural edits forever.
        self._open_batches: weakref.WeakSet = weakref.WeakSet()

    def __len__(self) -> int:
        return len(self._cells)

    # -- cell access -----------------------------------------------------------

    def cell_at(self, target) -> Cell | None:
        return self._cells.get(_coerce_pos(target))

    def get_value(self, target):
        cell = self._cells.get(_coerce_pos(target))
        return None if cell is None else cell.value

    def raw_value(self, col: int, row: int):
        """Value at bare integer coordinates — the hot-loop accessor.

        Skips target coercion; the windowed evaluation runs call this
        once per (cell, window-entry) pair.
        """
        cell = self._cells.get((col, row))
        return None if cell is None else cell.value

    def set_value(self, target, value) -> None:
        pos = _coerce_pos(target)
        if value is None:
            self._cells.pop(pos, None)
            return
        self._cells[pos] = Cell(value=value)

    def set_formula(self, target, text: str) -> None:
        """Set a formula from text (leading ``=`` optional)."""
        pos = _coerce_pos(target)
        body = text[1:] if text.startswith("=") else text
        self._cells[pos] = Cell(formula_text=body)

    def set_formula_ast(self, target, ast: Node) -> None:
        """Set a formula from a pre-built AST (the autofill fast path)."""
        self._cells[_coerce_pos(target)] = Cell(formula_ast=ast)

    def clear_cell(self, target) -> None:
        self._cells.pop(_coerce_pos(target), None)

    def clear_range(self, rng: Range) -> None:
        if rng.size < len(self._cells):
            for pos in list(rng.cells()):
                self._cells.pop(pos, None)
        else:
            for pos in [p for p in self._cells if rng.contains_cell(*p)]:
                del self._cells[pos]

    # -- iteration ------------------------------------------------------------

    def positions(self) -> Iterator[tuple[int, int]]:
        return iter(self._cells)

    def items(self) -> Iterator[tuple[tuple[int, int], Cell]]:
        return iter(self._cells.items())

    def formula_cells(self) -> Iterator[tuple[tuple[int, int], Cell]]:
        for pos, cell in self._cells.items():
            if cell.is_formula:
                yield pos, cell

    @property
    def formula_count(self) -> int:
        return sum(1 for _, cell in self.formula_cells())

    def used_range(self) -> Range | None:
        """Bounding box of all occupied cells, or None for an empty sheet."""
        if not self._cells:
            return None
        cols = [pos[0] for pos in self._cells]
        rows = [pos[1] for pos in self._cells]
        return Range(min(cols), min(rows), max(cols), max(rows))

    # -- batched editing ---------------------------------------------------------

    def begin_batch(self, graph=None, **kwargs):
        """Open a batched edit session on this sheet.

        Convenience entry point for the edit-batch pipeline
        (:mod:`repro.engine.batch`): builds a
        :class:`~repro.engine.recalc.RecalcEngine` over this sheet (and
        ``graph``, or a freshly built TACO graph) and returns its
        :class:`~repro.engine.batch.BatchEditSession`.  Callers that
        already hold an engine should use ``engine.begin_batch()``
        instead so the graph is reused across batches.
        """
        from ..engine.recalc import RecalcEngine  # deferred: engine sits above sheet

        return RecalcEngine(self, graph).begin_batch(**kwargs)

    # -- formula graph input ----------------------------------------------------

    def iter_dependencies(self) -> Iterator[Dependency]:
        """All same-sheet dependencies (prec range -> formula cell).

        Cross-sheet references are skipped: formula graphs in the paper
        are per-sheet, and a reference into another sheet contributes no
        edge to this sheet's graph.
        """
        for (col, row), cell in self._cells.items():
            if not cell.is_formula:
                continue
            dep = Range.cell(col, row)
            for ref in cell.references:
                if ref.sheet is not None and ref.sheet != self.name:
                    continue
                yield Dependency(ref.range, dep, ref.cue)

    def dependency_count(self) -> int:
        return sum(1 for _ in self.iter_dependencies())

    # -- CellResolver protocol (single-sheet form) ------------------------------

    def resolver_get_value(self, sheet: str | None, col: int, row: int):
        if sheet is not None and sheet != self.name:
            return None
        cell = self._cells.get((col, row))
        return None if cell is None else cell.value

    def resolver_iter_cells(self, sheet: str | None, rng: Range):
        if sheet is not None and sheet != self.name:
            return
        if rng.size <= len(self._cells):
            for pos in rng.cells():
                cell = self._cells.get(pos)
                if cell is not None and cell.value is not None:
                    yield pos[0], pos[1], cell.value
        else:
            for (col, row), cell in self._cells.items():
                if rng.contains_cell(col, row) and cell.value is not None:
                    yield col, row, cell.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sheet({self.name!r}, {len(self._cells)} cells)"


class SheetResolver:
    """Adapter presenting a single Sheet as a CellResolver."""

    __slots__ = ("_sheet",)

    def __init__(self, sheet: Sheet):
        self._sheet = sheet

    def get_value(self, sheet: str | None, col: int, row: int):
        return self._sheet.resolver_get_value(sheet, col, row)

    def iter_cells(self, sheet: str | None, rng: Range):
        return self._sheet.resolver_iter_cells(sheet, rng)
