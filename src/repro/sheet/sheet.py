"""The sheet: a sparse grid of cells plus dependency enumeration.

A :class:`Sheet` stores cells sparsely — by default in the typed
columnar store (:mod:`repro.sheet.columnar`), optionally in a plain
dict keyed by ``(col, row)`` (``store="object"``).  Both stores speak
the same mapping dialect, so everything above the accessors is
store-agnostic.  Besides the value/formula accessors the sheet provides
:meth:`Sheet.iter_dependencies`, which enumerates the raw formula-graph
edges (referenced range -> formula cell) together with their dollar-sign
cues — exactly the stream that both NoComp and TACO ingest.
"""

from __future__ import annotations

import os
import weakref
from typing import Iterator

from ..formula.ast_nodes import Node
from ..formula.references import ReferencedRange
from ..grid.range import Range
from ..grid.ref import parse_cell
from .cell import Cell
from .columnar import ColumnarStore

__all__ = ["Sheet", "Dependency", "DEFAULT_STORE", "STORE_KINDS"]

#: Valid ``Sheet(store=...)`` kinds.
STORE_KINDS = ("columnar", "object")

#: The store used when ``Sheet(store=None)``; overridable for A/B runs.
DEFAULT_STORE = os.environ.get("REPRO_SHEET_STORE", "columnar")


class Dependency:
    """One raw formula-graph dependency: ``prec -> dep`` with its cue."""

    __slots__ = ("prec", "dep", "cue")

    def __init__(self, prec: Range, dep: Range, cue: str = "RR"):
        self.prec = prec
        self.dep = dep
        self.cue = cue

    def as_tuple(self) -> tuple[Range, Range]:
        return (self.prec, self.dep)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dependency):
            return NotImplemented
        return self.prec == other.prec and self.dep == other.dep

    def __hash__(self) -> int:
        return hash((self.prec, self.dep))

    def __repr__(self) -> str:
        return f"Dependency({self.prec.to_a1()} -> {self.dep.to_a1()}, cue={self.cue})"


def _coerce_pos(target) -> tuple[int, int]:
    if isinstance(target, str):
        return parse_cell(target)
    if isinstance(target, Range):
        if not target.is_cell:
            raise ValueError(f"expected a single cell, got {target.to_a1()}")
        return target.head
    col, row = target
    return (col, row)


class Sheet:
    """A sparse spreadsheet grid."""

    def __init__(self, name: str = "Sheet1", store: str | None = None):
        self.name = name
        kind = DEFAULT_STORE if store is None else store
        if kind == "columnar":
            self._cells = ColumnarStore()
            # Bind the hot-loop accessor straight to the store: instance
            # attributes win over plain methods, so the per-call branch
            # below disappears for columnar sheets.
            self.raw_value = self._cells.read_value
        elif kind == "object":
            self._cells: dict[tuple[int, int], Cell] = {}
        else:
            raise ValueError(
                f"unknown store kind {kind!r}; expected one of {STORE_KINDS}"
            )
        self.store_kind = kind
        # Open BatchEditSessions register here (on the sheet, not their
        # engine, so sessions from throwaway engines over the same sheet
        # are visible too); structural edits refuse to run while any is
        # open — buffered cell addresses would straddle the shift.  Weak
        # references: an abandoned session must not lock the sheet out
        # of structural edits forever.
        self._open_batches: weakref.WeakSet = weakref.WeakSet()

    def __len__(self) -> int:
        return len(self._cells)

    # -- cell access -----------------------------------------------------------

    def cell_at(self, target) -> Cell | None:
        return self._cells.get(_coerce_pos(target))

    def formula_at(self, target) -> Cell | None:
        """The formula cell at ``target``, or None for blank/pure-value
        positions — without materialising a view on columnar sheets."""
        pos = _coerce_pos(target)
        cells = self._cells
        if type(cells) is dict:
            cell = cells.get(pos)
            return cell if cell is not None and cell.is_formula else None
        return cells.formula_at(pos)

    def get_value(self, target):
        pos = _coerce_pos(target)
        cells = self._cells
        if type(cells) is dict:
            cell = cells.get(pos)
            return None if cell is None else cell.value
        return cells.read_value(pos[0], pos[1])

    def raw_value(self, col: int, row: int):
        """Value at bare integer coordinates — the hot-loop accessor.

        Skips target coercion; the windowed evaluation runs call this
        once per (cell, window-entry) pair.  On columnar sheets an
        instance attribute rebinds this name to ``store.read_value``.
        """
        cell = self._cells.get((col, row))
        return None if cell is None else cell.value

    def set_value(self, target, value) -> None:
        pos = _coerce_pos(target)
        cells = self._cells
        if type(cells) is dict:
            if value is None:
                cells.pop(pos, None)
            else:
                cells[pos] = Cell(value=value)
        else:
            cells.write_pure(pos[0], pos[1], value)

    def set_formula(self, target, text: str) -> None:
        """Set a formula from text (leading ``=`` optional)."""
        pos = _coerce_pos(target)
        body = text[1:] if text.startswith("=") else text
        cells = self._cells
        if type(cells) is dict:
            cells[pos] = Cell(formula_text=body)
        else:
            cells.put_formula(pos, formula_text=body)

    def set_formula_ast(self, target, ast: Node) -> None:
        """Set a formula from a pre-built AST (the autofill fast path)."""
        pos = _coerce_pos(target)
        cells = self._cells
        if type(cells) is dict:
            cells[pos] = Cell(formula_ast=ast)
        else:
            cells.put_formula(pos, formula_ast=ast)

    def clear_cell(self, target) -> None:
        pos = _coerce_pos(target)
        cells = self._cells
        if type(cells) is dict:
            cells.pop(pos, None)
        else:
            cells.write_pure(pos[0], pos[1], None)

    def clear_range(self, rng: Range) -> None:
        cells = self._cells
        if type(cells) is not dict:
            for pos in [p for p in cells if rng.contains_cell(*p)]:
                cells.write_pure(pos[0], pos[1], None)
        elif rng.size < len(cells):
            for pos in list(rng.cells()):
                cells.pop(pos, None)
        else:
            for pos in [p for p in cells if rng.contains_cell(*p)]:
                del cells[pos]

    # -- iteration ------------------------------------------------------------

    def positions(self) -> Iterator[tuple[int, int]]:
        return iter(self._cells)

    def items(self) -> Iterator[tuple[tuple[int, int], Cell]]:
        return iter(self._cells.items())

    def formula_cells(self) -> Iterator[tuple[tuple[int, int], Cell]]:
        cells = self._cells
        if type(cells) is dict:
            for pos, cell in cells.items():
                if cell.is_formula:
                    yield pos, cell
        else:
            yield from cells.formula_items()

    @property
    def formula_count(self) -> int:
        cells = self._cells
        if type(cells) is dict:
            return sum(1 for _, cell in self.formula_cells())
        return cells.formula_count

    def used_range(self) -> Range | None:
        """Bounding box of all occupied cells, or None for an empty sheet."""
        cells = self._cells
        if not cells:
            return None
        if type(cells) is not dict:
            return Range(*cells.bounds())
        cols = [pos[0] for pos in cells]
        rows = [pos[1] for pos in cells]
        return Range(min(cols), min(rows), max(cols), max(rows))

    # -- batched editing ---------------------------------------------------------

    def begin_batch(self, graph=None, **kwargs):
        """Open a batched edit session on this sheet.

        Convenience entry point for the edit-batch pipeline
        (:mod:`repro.engine.batch`): builds a
        :class:`~repro.engine.recalc.RecalcEngine` over this sheet (and
        ``graph``, or a freshly built TACO graph) and returns its
        :class:`~repro.engine.batch.BatchEditSession`.  Callers that
        already hold an engine should use ``engine.begin_batch()``
        instead so the graph is reused across batches.
        """
        from ..engine.recalc import RecalcEngine  # deferred: engine sits above sheet

        return RecalcEngine(self, graph).begin_batch(**kwargs)

    # -- formula graph input ----------------------------------------------------

    def iter_dependencies(self) -> Iterator[Dependency]:
        """All same-sheet dependencies (prec range -> formula cell).

        Cross-sheet references are skipped: formula graphs in the paper
        are per-sheet, and a reference into another sheet contributes no
        edge to this sheet's graph.
        """
        for (col, row), cell in self.formula_cells():
            dep = Range.cell(col, row)
            for ref in cell.references:
                if ref.sheet is not None and ref.sheet != self.name:
                    continue
                yield Dependency(ref.range, dep, ref.cue)

    def dependency_count(self) -> int:
        return sum(1 for _ in self.iter_dependencies())

    # -- CellResolver protocol (single-sheet form) ------------------------------

    def resolver_get_value(self, sheet: str | None, col: int, row: int):
        if sheet is not None and sheet != self.name:
            return None
        return self.raw_value(col, row)

    def resolver_iter_cells(self, sheet: str | None, rng: Range):
        """Non-blank cells of ``rng`` in row-major geometric order.

        The order is part of the contract: aggregate evaluation picks
        the *first* error a range yields, so both stores must enumerate
        identically for evaluation to be store-independent.
        """
        if sheet is not None and sheet != self.name:
            return
        cells = self._cells
        if type(cells) is not dict:
            yield from cells.iter_range(rng)
        elif rng.size <= len(cells):
            for pos in rng.cells():
                cell = cells.get(pos)
                if cell is not None and cell.value is not None:
                    yield pos[0], pos[1], cell.value
        else:
            found = [
                (row, col, cell.value)
                for (col, row), cell in cells.items()
                if rng.contains_cell(col, row) and cell.value is not None
            ]
            found.sort(key=lambda item: (item[0], item[1]))
            for row, col, value in found:
                yield col, row, value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sheet({self.name!r}, {len(self._cells)} cells)"


class SheetResolver:
    """Adapter presenting a single Sheet as a CellResolver.

    ``lookup_probe`` is the engine's optional lookaside-index hook
    (:mod:`repro.engine.lookup`): lookup builtins duck-type for it on
    the resolver behind a ``RangeValue``, so the formula layer stays
    engine-agnostic.  None means "always linear-scan".
    """

    __slots__ = ("_sheet", "lookup_probe")

    def __init__(self, sheet: Sheet):
        self._sheet = sheet
        self.lookup_probe = None

    def get_value(self, sheet: str | None, col: int, row: int):
        return self._sheet.resolver_get_value(sheet, col, row)

    def iter_cells(self, sheet: str | None, rng: Range):
        return self._sheet.resolver_iter_cells(sheet, rng)
