"""Spreadsheet model: cells, sheets, workbooks, and autofill."""

from .autofill import autofill, fill_formula_column, fill_formula_row
from .cell import Cell
from .sheet import Dependency, Sheet, SheetResolver
from .workbook import Workbook, WorkbookResolver

__all__ = [
    "Cell",
    "Dependency",
    "Sheet",
    "SheetResolver",
    "Workbook",
    "WorkbookResolver",
    "autofill",
    "fill_formula_column",
    "fill_formula_row",
]
