"""Structural sheet edits: inserting and deleting whole rows/columns.

Spreadsheet systems must keep formulae consistent under structural edits:
references at or below an inserted row shift, ranges straddling the
insertion point stretch, and references into deleted rows collapse to
``#REF!`` — regardless of ``$`` markers (absolute references pin against
*autofill*, not against structural edits).  These semantics are what the
graph-level structural maintenance in :mod:`repro.core.structural` must
reproduce, so the sheet-level implementation here doubles as its test
oracle.
"""

from __future__ import annotations

from ..formula.ast_nodes import (
    BinaryOp,
    CellNode,
    ErrorLiteral,
    FunctionCall,
    Node,
    RangeNode,
    UnaryOp,
)
from ..formula.errors import REF_ERROR
from ..grid.range import Range
from ..grid.ref import CellRef
from .sheet import Sheet

__all__ = [
    "insert_rows",
    "delete_rows",
    "insert_columns",
    "delete_columns",
    "shift_range_for_insert",
    "shift_range_for_delete",
]


# ---------------------------------------------------------------------------
# range arithmetic shared with the graph-level implementation


def shift_range_for_insert(rng: Range, index: int, count: int, axis: str = "row") -> Range:
    """How a referenced range moves when ``count`` rows/columns are
    inserted before ``index``: below shifts, straddling stretches."""
    if axis == "row":
        if rng.r2 < index:
            return rng
        if rng.r1 >= index:
            return rng.shift(0, count)
        return Range(rng.c1, rng.r1, rng.c2, rng.r2 + count)
    if rng.c2 < index:
        return rng
    if rng.c1 >= index:
        return rng.shift(count, 0)
    return Range(rng.c1, rng.r1, rng.c2 + count, rng.r2)


def shift_range_for_delete(
    rng: Range, index: int, count: int, axis: str = "row"
) -> Range | None:
    """How a referenced range moves when rows/columns
    ``[index, index+count)`` are deleted; ``None`` means the whole range
    is gone (a ``#REF!``)."""
    end = index + count - 1
    if axis == "row":
        if rng.r2 < index:
            return rng
        if rng.r1 > end:
            return rng.shift(0, -count)
        new_r1 = rng.r1 if rng.r1 < index else index
        new_r2 = (rng.r2 - count) if rng.r2 > end else index - 1
        if new_r2 < new_r1:
            return None
        return Range(rng.c1, new_r1, rng.c2, new_r2)
    if rng.c2 < index:
        return rng
    if rng.c1 > end:
        return rng.shift(-count, 0)
    new_c1 = rng.c1 if rng.c1 < index else index
    new_c2 = (rng.c2 - count) if rng.c2 > end else index - 1
    if new_c2 < new_c1:
        return None
    return Range(new_c1, rng.r1, new_c2, rng.r2)


# ---------------------------------------------------------------------------
# AST reference rewriting


def _moved_ref(ref: CellRef, delta: int, axis: str) -> CellRef:
    if axis == "row":
        return CellRef(ref.col, ref.row + delta, ref.col_fixed, ref.row_fixed)
    return CellRef(ref.col + delta, ref.row, ref.col_fixed, ref.row_fixed)


def _rewrite(node: Node, transform) -> Node:
    """Rebuild an AST, mapping each reference through ``transform``.

    ``transform(range) -> Range | None`` works on the bare geometry;
    fixedness flags are carried over unchanged.
    """
    if isinstance(node, CellNode):
        moved = transform(node.to_range())
        if moved is None:
            return ErrorLiteral(REF_ERROR.code)
        ref = node.ref
        return CellNode(
            CellRef(moved.c1, moved.r1, ref.col_fixed, ref.row_fixed), node.sheet
        )
    if isinstance(node, RangeNode):
        moved = transform(node.to_range())
        if moved is None:
            return ErrorLiteral(REF_ERROR.code)
        head, tail = node.head, node.tail
        return RangeNode(
            CellRef(moved.c1, moved.r1, head.col_fixed, head.row_fixed),
            CellRef(moved.c2, moved.r2, tail.col_fixed, tail.row_fixed),
            node.sheet,
        )
    if isinstance(node, FunctionCall):
        return FunctionCall(node.name, [_rewrite(arg, transform) for arg in node.args])
    if isinstance(node, BinaryOp):
        return BinaryOp(node.op, _rewrite(node.left, transform), _rewrite(node.right, transform))
    if isinstance(node, UnaryOp):
        return UnaryOp(node.op, _rewrite(node.operand, transform))
    return node


# ---------------------------------------------------------------------------
# sheet-level operations


def _apply_structural(sheet: Sheet, move_cell, transform_ref) -> None:
    """Rebuild the cell dict under a structural edit.

    ``move_cell(pos) -> pos | None`` relocates each physical cell;
    ``transform_ref(range) -> Range | None`` rewrites formula references.
    """
    old_cells = dict(sheet.items())
    sheet._cells.clear()
    for pos, cell in old_cells.items():
        new_pos = move_cell(pos)
        if new_pos is None:
            continue
        if cell.is_formula:
            sheet.set_formula_ast(new_pos, _rewrite(cell.formula_ast, transform_ref))
            sheet.cell_at(new_pos).value = cell.value
        else:
            sheet.set_value(new_pos, cell.value)


def insert_rows(sheet: Sheet, row: int, count: int = 1) -> None:
    """Insert ``count`` blank rows before ``row``."""
    if count < 1 or row < 1:
        raise ValueError("row and count must be positive")

    def move(pos):
        col, r = pos
        return (col, r + count) if r >= row else pos

    _apply_structural(sheet, move, lambda rng: shift_range_for_insert(rng, row, count, "row"))


def delete_rows(sheet: Sheet, row: int, count: int = 1) -> None:
    """Delete rows ``[row, row+count)``; references into them go #REF!."""
    if count < 1 or row < 1:
        raise ValueError("row and count must be positive")
    end = row + count - 1

    def move(pos):
        col, r = pos
        if row <= r <= end:
            return None
        return (col, r - count) if r > end else pos

    _apply_structural(sheet, move, lambda rng: shift_range_for_delete(rng, row, count, "row"))


def insert_columns(sheet: Sheet, col: int, count: int = 1) -> None:
    """Insert ``count`` blank columns before ``col``."""
    if count < 1 or col < 1:
        raise ValueError("col and count must be positive")

    def move(pos):
        c, row = pos
        return (c + count, row) if c >= col else pos

    _apply_structural(sheet, move, lambda rng: shift_range_for_insert(rng, col, count, "col"))


def delete_columns(sheet: Sheet, col: int, count: int = 1) -> None:
    """Delete columns ``[col, col+count)``."""
    if count < 1 or col < 1:
        raise ValueError("col and count must be positive")
    end = col + count - 1

    def move(pos):
        c, row = pos
        if col <= c <= end:
            return None
        return (c - count, row) if c > end else pos

    _apply_structural(sheet, move, lambda rng: shift_range_for_delete(rng, col, count, "col"))
