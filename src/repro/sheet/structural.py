"""Structural sheet edits: inserting and deleting whole rows/columns.

Spreadsheet systems must keep formulae consistent under structural edits:
references at or below an inserted row shift, ranges straddling the
insertion point stretch, and references into deleted rows collapse to
``#REF!`` — regardless of ``$`` markers (absolute references pin against
*autofill*, not against structural edits).  These semantics are what the
graph-level structural maintenance in :mod:`repro.core.structural` must
reproduce, so the sheet-level implementation here doubles as its test
oracle.

Edits are *sheet-scoped*: a reference only shifts when it points into the
edited sheet.  A formula on the edited sheet rewrites its unqualified and
self-qualified references; a ``Sheet2!A1`` inside it is untouched.  The
converse pass — formulas on *other* sheets whose sheet-qualified
references point into the edited sheet — is :func:`rewrite_for_edit`,
which the workbook-level pipeline (:mod:`repro.engine.structural`) runs
over every sibling sheet.

Every operation returns a :class:`SheetEditReport` so callers (the
recalculation pipeline in particular) know exactly which cells moved,
which formulas were rewritten, and which references were struck to
``#REF!`` — the seeds of the post-edit dirty set.
"""

from __future__ import annotations

import re
from typing import Callable, NamedTuple

from ..formula.ast_nodes import (
    BinaryOp,
    CellNode,
    ErrorLiteral,
    FunctionCall,
    Node,
    RangeNode,
    UnaryOp,
    walk,
)
from ..formula.errors import REF_ERROR
from ..grid.range import Range
from ..grid.ref import CellRef, letters_to_col
from .cell import Cell
from .sheet import Sheet

__all__ = [
    "SheetEditReport",
    "insert_rows",
    "delete_rows",
    "insert_columns",
    "delete_columns",
    "edit_transform",
    "rewrite_for_edit",
    "rewrite_siblings",
    "shift_range_for_insert",
    "shift_range_for_delete",
    "STRUCTURAL_OPS",
]

#: op name -> (axis, mode); the four structural operations share one
#: geometry engine parameterised by these two values.
STRUCTURAL_OPS = {
    "insert_rows": ("row", "insert"),
    "delete_rows": ("row", "delete"),
    "insert_columns": ("col", "insert"),
    "delete_columns": ("col", "delete"),
}


class SheetEditReport(NamedTuple):
    """What one structural edit did to one sheet.

    All positions are *post-edit* coordinates.  ``moved``, ``rewritten``
    and ``resized`` overlap freely: a shifted formula whose straddling
    range stretched appears in all three.
    """

    moved: set[tuple[int, int]]        # formula cells whose position changed
    rewritten: set[tuple[int, int]]    # formula cells whose AST changed
    resized: set[tuple[int, int]]      # formulas with a stretched/shrunk range
    volatile: set[tuple[int, int]]     # moved/rewritten formulas using ROW/COLUMN
    ref_struck: set[tuple[int, int]]   # formulas that gained a #REF! here
    removed: int                       # cells deleted with the edited band

    @property
    def dirty_seeds(self) -> set[tuple[int, int]]:
        """Formula cells whose *value* may have changed.

        A structural edit translates whole bands of the grid: a formula
        whose references only shifted wholesale (or stayed put) reads
        exactly the values it read before — every referenced cell moved
        in lockstep, or not at all — so its value is invariant, moved or
        not.  Values can only change where a referenced range changed
        *size* (stretched over inserted blanks, shrunk past a deleted
        band — size-sensitive functions like ``ROWS`` and any aggregate
        over deleted values see the difference), where a moved or
        rewritten formula asks about *position* itself (``ROW``/
        ``COLUMN`` — the ``volatile`` set), or where a reference
        collapsed to ``#REF!``.  Their transitive dependents come from
        the graph, not from this report.
        """
        return self.resized | self.volatile | self.ref_struck

    @property
    def changed_formulas(self) -> int:
        return len(self.moved | self.rewritten)


# ---------------------------------------------------------------------------
# range arithmetic shared with the graph-level implementation


def shift_range_for_insert(rng: Range, index: int, count: int, axis: str = "row") -> Range:
    """How a referenced range moves when ``count`` rows/columns are
    inserted before ``index``: below shifts, straddling stretches."""
    if axis == "row":
        if rng.r2 < index:
            return rng
        if rng.r1 >= index:
            return rng.shift(0, count)
        return Range(rng.c1, rng.r1, rng.c2, rng.r2 + count)
    if rng.c2 < index:
        return rng
    if rng.c1 >= index:
        return rng.shift(count, 0)
    return Range(rng.c1, rng.r1, rng.c2 + count, rng.r2)


def shift_range_for_delete(
    rng: Range, index: int, count: int, axis: str = "row"
) -> Range | None:
    """How a referenced range moves when rows/columns
    ``[index, index+count)`` are deleted; ``None`` means the whole range
    is gone (a ``#REF!``)."""
    end = index + count - 1
    if axis == "row":
        if rng.r2 < index:
            return rng
        if rng.r1 > end:
            return rng.shift(0, -count)
        new_r1 = rng.r1 if rng.r1 < index else index
        new_r2 = (rng.r2 - count) if rng.r2 > end else index - 1
        if new_r2 < new_r1:
            return None
        return Range(rng.c1, new_r1, rng.c2, new_r2)
    if rng.c2 < index:
        return rng
    if rng.c1 > end:
        return rng.shift(-count, 0)
    new_c1 = rng.c1 if rng.c1 < index else index
    new_c2 = (rng.c2 - count) if rng.c2 > end else index - 1
    if new_c2 < new_c1:
        return None
    return Range(new_c1, rng.r1, new_c2, rng.r2)


def edit_transform(op: str, index: int, count: int) -> Callable[[Range], Range | None]:
    """The reference transform of one structural operation by name."""
    axis, mode = STRUCTURAL_OPS[op]
    if mode == "insert":
        return lambda rng: shift_range_for_insert(rng, index, count, axis)
    return lambda rng: shift_range_for_delete(rng, index, count, axis)


# ---------------------------------------------------------------------------
# textual prescreen: skip parsing formulas an edit provably cannot touch

#: Anything that scans like an A1 reference (``B12``, ``$AB$3``, also a
#: qualified ``Sheet1!C4`` — the qualifier is irrelevant here).  The
#: lookbehind keeps suffixes of longer identifiers from matching, the
#: lookaheads keep the digits whole and exclude function calls like
#: ``LOG10(`` (a reference is never followed by ``(``); quoted strings
#: are *not* excluded, which only ever forces the slow path.
_A1_TOKEN = re.compile(r"(?<![A-Za-z0-9_$])\$?([A-Za-z]{1,3})\$?(\d+)(?!\d)(?!\s*\()")

#: ROW/COLUMN make a formula's value depend on where things *sit*, so a
#: formula mentioning them can never be prescreened away.
_POSITION_TOKEN = re.compile(r"(?i)(?<![A-Za-z0-9_])(?:ROW|COLUMN)(?![A-Za-z0-9_])")


def _may_touch(text: str, axis: str, index: int) -> bool:
    """Conservative textual test: could a structural edit at ``index``
    along ``axis`` affect a formula with this source text?

    ``False`` is a proof: every token that could possibly be a reference
    sits strictly before the edit line (references never shift, ranges
    never stretch or strike) and no position-sensitive function appears —
    so the rewritten AST would come back identical.  ``True`` just means
    "parse and look"; string literals and references qualified into other
    sheets produce harmless ``True``s.  This is what keeps replaying a
    structural edit onto a freshly restored (lazily parsed) sheet from
    re-parsing every formula in the workbook: ``O(len(text))`` per cell
    instead of a full tokenize+parse.
    """
    if _POSITION_TOKEN.search(text):
        return True
    if axis == "row":
        for match in _A1_TOKEN.finditer(text):
            if int(match.group(2)) >= index:
                return True
        return False
    for match in _A1_TOKEN.finditer(text):
        if letters_to_col(match.group(1).upper()) >= index:
            return True
    return False


# ---------------------------------------------------------------------------
# AST reference rewriting


def _rewrite(node: Node, transform, applies) -> Node:
    """Rebuild an AST, mapping each in-scope reference through ``transform``.

    ``transform(range) -> Range | None`` works on the bare geometry;
    fixedness flags are carried over unchanged.  ``applies(node) -> bool``
    decides whether a reference node is in scope for this edit: a
    reference whose sheet qualifier names a different sheet than the one
    being edited must never shift.  Subtrees that come back unchanged are
    returned *by identity*, so callers can detect genuinely rewritten
    formulas with an ``is`` check (and untouched ASTs allocate nothing).
    """
    if isinstance(node, CellNode):
        if not applies(node):
            return node
        moved = transform(node.to_range())
        if moved is None:
            return ErrorLiteral(REF_ERROR.code)
        ref = node.ref
        if moved.c1 == ref.col and moved.r1 == ref.row:
            return node
        return CellNode(
            CellRef(moved.c1, moved.r1, ref.col_fixed, ref.row_fixed), node.sheet
        )
    if isinstance(node, RangeNode):
        if not applies(node):
            return node
        moved = transform(node.to_range())
        if moved is None:
            return ErrorLiteral(REF_ERROR.code)
        if moved == node.to_range():
            return node
        head, tail = node.head, node.tail
        return RangeNode(
            CellRef(moved.c1, moved.r1, head.col_fixed, head.row_fixed),
            CellRef(moved.c2, moved.r2, tail.col_fixed, tail.row_fixed),
            node.sheet,
        )
    if isinstance(node, FunctionCall):
        args = [_rewrite(arg, transform, applies) for arg in node.args]
        if all(new is old for new, old in zip(args, node.args)):
            return node
        return FunctionCall(node.name, args)
    if isinstance(node, BinaryOp):
        left = _rewrite(node.left, transform, applies)
        right = _rewrite(node.right, transform, applies)
        if left is node.left and right is node.right:
            return node
        return BinaryOp(node.op, left, right)
    if isinstance(node, UnaryOp):
        operand = _rewrite(node.operand, transform, applies)
        if operand is node.operand:
            return node
        return UnaryOp(node.op, operand)
    return node


#: Functions whose value depends on where a reference (or the host
#: formula) *sits*, not on any referenced value — a wholesale shift
#: changes their result even though every referenced value is preserved,
#: so formulas using them cannot be excluded from the dirty seeds.
_POSITION_SENSITIVE = frozenset({"ROW", "COLUMN"})


def _position_sensitive(ast: Node) -> bool:
    return any(
        isinstance(node, FunctionCall) and node.name in _POSITION_SENSITIVE
        for node in walk(ast)
    )


class _TransformWatcher:
    """Wrap a transform, noting strikes (``#REF!``) and size changes.

    A single-axis structural edit leaves a surviving range either
    untouched, shifted wholesale (size preserved), or stretched/shrunk
    across the edit line — so ``size`` is an exact change-of-shape
    detector, and shape is exactly what decides whether the formula's
    value can change (see :meth:`SheetEditReport.dirty_seeds`).
    """

    __slots__ = ("transform", "strikes", "resized")

    def __init__(self, transform):
        self.transform = transform
        self.strikes = 0
        self.resized = 0

    def __call__(self, rng: Range) -> Range | None:
        moved = self.transform(rng)
        if moved is None:
            self.strikes += 1
        elif moved.size != rng.size:
            self.resized += 1
        return moved


# ---------------------------------------------------------------------------
# sheet-level operations


def _apply_structural_columnar(
    sheet: Sheet, transform_ref, prescreen, geometry
) -> SheetEditReport:
    """The columnar-store twin of :func:`_apply_structural`.

    Values move wholesale inside the column arrays
    (:meth:`~repro.sheet.columnar.ColumnarStore.structural_edit` splices
    them in O(column length) memmoves and rekeys the formula registry),
    so only the *formula* population — typically a tiny fraction of the
    sheet — is walked here for reference rewriting.  Must never run
    interleaved with the object path: registered views are rebound by
    the splice, and a view captured before it would read post-edit
    coordinates.
    """
    store = sheet._cells
    name = sheet.name

    def applies(node) -> bool:
        return node.sheet is None or node.sheet == name

    axis, mode, index, count = geometry
    pre_positions = {id(cell): pos for pos, cell in store.formula_items()}
    removed = store.structural_edit(axis, mode, index, count)
    moved: set[tuple[int, int]] = set()
    rewritten: set[tuple[int, int]] = set()
    resized: set[tuple[int, int]] = set()
    volatile: set[tuple[int, int]] = set()
    struck: set[tuple[int, int]] = set()
    for new_pos, cell in list(store.formula_items()):
        did_move = new_pos != pre_positions[id(cell)]
        text = cell._formula_text
        if prescreen is not None and text is not None and not prescreen(text):
            # Provably untouched AST (see the object path's rationale);
            # a re-registration restarts the position-dependent caches
            # cold, exactly like the object path's fresh text-only Cell.
            if did_move:
                store.put_formula(
                    new_pos, formula_text=text, value=store.read_value(*new_pos)
                )
                moved.add(new_pos)
            continue
        watcher = _TransformWatcher(transform_ref)
        new_ast = _rewrite(cell.formula_ast, watcher, applies)
        if new_ast is cell.formula_ast and not did_move:
            continue
        # The cached value already sits at new_pos (the splice moved it);
        # read it out before put_formula resets the slot.
        store.put_formula(
            new_pos, formula_ast=new_ast, value=store.read_value(*new_pos)
        )
        if did_move:
            moved.add(new_pos)
        if new_ast is not cell.formula_ast:
            rewritten.add(new_pos)
        if watcher.resized:
            resized.add(new_pos)
        if _position_sensitive(new_ast):
            volatile.add(new_pos)
        if watcher.strikes:
            struck.add(new_pos)
    return SheetEditReport(moved, rewritten, resized, volatile, struck, removed)


def _apply_structural(
    sheet: Sheet, move_cell, transform_ref, prescreen=None, geometry=None
) -> SheetEditReport:
    """Rebuild the cell dict under a structural edit.

    ``move_cell(pos) -> pos | None`` relocates each physical cell;
    ``transform_ref(range) -> Range | None`` rewrites formula references.
    Only references *into this sheet* (unqualified, or qualified with the
    sheet's own name) are rewritten; sheet-qualified references into
    other sheets never shift under an edit here.

    Cells that neither move nor change keep their ``Cell`` object — and
    with it the memoised references and template key; moved or rewritten
    formulas get a fresh ``Cell`` so every position-dependent cache
    (``Cell._template_key``, extracted references) is invalidated at
    once.

    ``prescreen(text) -> bool`` (optional) is the conservative textual
    test of :func:`_may_touch`: a formula whose source text provably
    cannot be affected skips AST materialisation entirely — it keeps its
    ``Cell`` in place, or moves as a fresh text-only ``Cell`` whose
    position-dependent caches start cold.  This is what makes an edit on
    a lazily parsed sheet (a fresh xlsx read, a snapshot restore) cost
    ``O(cells)`` text scans instead of ``O(cells)`` formula parses.
    """
    if geometry is not None and type(sheet._cells) is not dict:
        return _apply_structural_columnar(sheet, transform_ref, prescreen, geometry)

    name = sheet.name

    def applies(node) -> bool:
        return node.sheet is None or node.sheet == name

    moved: set[tuple[int, int]] = set()
    rewritten: set[tuple[int, int]] = set()
    resized: set[tuple[int, int]] = set()
    volatile: set[tuple[int, int]] = set()
    struck: set[tuple[int, int]] = set()
    removed = 0
    old_cells = dict(sheet.items())
    sheet._cells.clear()
    for pos, cell in old_cells.items():
        new_pos = move_cell(pos)
        if new_pos is None:
            removed += 1
            continue
        if not cell.is_formula:
            sheet._cells[new_pos] = cell
            continue
        text = cell._formula_text
        if prescreen is not None and text is not None and not prescreen(text):
            # Provably untouched: same AST either way.  In place, the
            # Cell (and its memoised caches) survives; moved, the source
            # text is still verbatim-valid at the new position but the
            # position-dependent caches must not travel.
            if new_pos == pos:
                sheet._cells[pos] = cell
            else:
                fresh = Cell(formula_text=text)
                fresh.value = cell.value
                sheet._cells[new_pos] = fresh
                moved.add(new_pos)
            continue
        watcher = _TransformWatcher(transform_ref)
        new_ast = _rewrite(cell.formula_ast, watcher, applies)
        if new_ast is cell.formula_ast and new_pos == pos:
            sheet._cells[pos] = cell
            continue
        sheet.set_formula_ast(new_pos, new_ast)
        sheet.cell_at(new_pos).value = cell.value
        if new_pos != pos:
            moved.add(new_pos)
        if new_ast is not cell.formula_ast:
            rewritten.add(new_pos)
        if watcher.resized:
            resized.add(new_pos)
        if _position_sensitive(new_ast):
            volatile.add(new_pos)
        if watcher.strikes:
            struck.add(new_pos)
    return SheetEditReport(moved, rewritten, resized, volatile, struck, removed)


def rewrite_for_edit(
    sheet: Sheet, target: str, op: str, index: int, count: int
) -> SheetEditReport:
    """Rewrite ``sheet``'s references into ``target`` after a structural
    edit performed *on the other sheet* ``target``.

    No cell on ``sheet`` moves — only sheet-qualified references that
    point into the edited sheet shift (or collapse to ``#REF!`` when the
    referenced band was deleted).  Formulas whose AST changes are
    replaced wholesale, invalidating their memoised references and
    template key; cached values are carried over (they are stale until
    the owner recalculates, exactly like any other dependent).
    """
    if sheet.name == target:
        raise ValueError(
            "rewrite_for_edit is the cross-sheet pass; "
            f"use {op} directly on the edited sheet {target!r}"
        )
    transform = edit_transform(op, index, count)
    # In formula source a quoted sheet name doubles its apostrophes
    # ('It''s'!A1): a name containing one never appears verbatim, so the
    # textual shortcut below must look for the escaped spelling too.
    quoted_target = target.replace("'", "''")

    def applies(node) -> bool:
        return node.sheet == target

    rewritten: set[tuple[int, int]] = set()
    resized: set[tuple[int, int]] = set()
    volatile: set[tuple[int, int]] = set()
    struck: set[tuple[int, int]] = set()
    for pos, cell in list(sheet.formula_cells()):
        text = cell._formula_text
        if text is not None and target not in text and quoted_target not in text:
            # A reference into ``target`` must spell its name (possibly
            # apostrophe-escaped); a formula whose text never mentions it
            # cannot be affected.  (A name that happens to appear in a
            # string literal just forces the slow path — conservative,
            # never wrong.)
            continue
        watcher = _TransformWatcher(transform)
        new_ast = _rewrite(cell.formula_ast, watcher, applies)
        if new_ast is cell.formula_ast:
            continue
        value = cell.value
        sheet.set_formula_ast(pos, new_ast)
        sheet.cell_at(pos).value = value
        rewritten.add(pos)
        if watcher.resized:
            resized.add(pos)
        if _position_sensitive(new_ast):
            volatile.add(pos)
        if watcher.strikes:
            struck.add(pos)
    return SheetEditReport(set(), rewritten, resized, volatile, struck, 0)


def rewrite_siblings(
    workbook, target: Sheet, op: str, index: int, count: int
) -> dict[str, SheetEditReport]:
    """Run :func:`rewrite_for_edit` over every sheet of ``workbook``
    except ``target`` (the edited sheet, validated to be a member — by
    identity, so a same-named stranger sheet is rejected).

    Returns one :class:`SheetEditReport` per *touched* sibling sheet,
    keyed by sheet name, so callers can enumerate exactly which
    cross-sheet formulas were rewritten or struck — their cached values
    are stale until each sheet's own engine recalculates (formula graphs
    are per-sheet).  Shared by the engine pipeline and
    :class:`~repro.sheet.workbook.Workbook`'s structural methods.
    """
    if not any(sheet is target for sheet in workbook.sheets()):
        raise ValueError(
            f"sheet {target.name!r} is not part of workbook {workbook.name!r}"
        )
    reports: dict[str, SheetEditReport] = {}
    for other in workbook.sheets():
        if other is target:
            continue
        report = rewrite_for_edit(other, target.name, op, index, count)
        if report.rewritten or report.ref_struck:
            reports[other.name] = report
    return reports


def insert_rows(sheet: Sheet, row: int, count: int = 1) -> SheetEditReport:
    """Insert ``count`` blank rows before ``row``."""
    if count < 1 or row < 1:
        raise ValueError("row and count must be positive")

    def move(pos):
        col, r = pos
        return (col, r + count) if r >= row else pos

    return _apply_structural(
        sheet, move, lambda rng: shift_range_for_insert(rng, row, count, "row"),
        prescreen=lambda text: _may_touch(text, "row", row),
        geometry=("row", "insert", row, count),
    )


def delete_rows(sheet: Sheet, row: int, count: int = 1) -> SheetEditReport:
    """Delete rows ``[row, row+count)``; references into them go #REF!."""
    if count < 1 or row < 1:
        raise ValueError("row and count must be positive")
    end = row + count - 1

    def move(pos):
        col, r = pos
        if row <= r <= end:
            return None
        return (col, r - count) if r > end else pos

    return _apply_structural(
        sheet, move, lambda rng: shift_range_for_delete(rng, row, count, "row"),
        prescreen=lambda text: _may_touch(text, "row", row),
        geometry=("row", "delete", row, count),
    )


def insert_columns(sheet: Sheet, col: int, count: int = 1) -> SheetEditReport:
    """Insert ``count`` blank columns before ``col``."""
    if count < 1 or col < 1:
        raise ValueError("col and count must be positive")

    def move(pos):
        c, row = pos
        return (c + count, row) if c >= col else pos

    return _apply_structural(
        sheet, move, lambda rng: shift_range_for_insert(rng, col, count, "col"),
        prescreen=lambda text: _may_touch(text, "col", col),
        geometry=("col", "insert", col, count),
    )


def delete_columns(sheet: Sheet, col: int, count: int = 1) -> SheetEditReport:
    """Delete columns ``[col, col+count)``."""
    if count < 1 or col < 1:
        raise ValueError("col and count must be positive")
    end = col + count - 1

    def move(pos):
        c, row = pos
        if col <= c <= end:
            return None
        return (c - count, row) if c > end else pos

    return _apply_structural(
        sheet, move, lambda rng: shift_range_for_delete(rng, col, count, "col"),
        prescreen=lambda text: _may_touch(text, "col", col),
        geometry=("col", "delete", col, count),
    )
