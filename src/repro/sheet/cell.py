"""The cell: a pure value or a formula with a cached evaluated value."""

from __future__ import annotations

from ..formula.ast_nodes import Node
from ..formula.parser import parse_formula
from ..formula.references import ReferencedRange, extract_references

__all__ = ["Cell"]


class Cell:
    """One spreadsheet cell.

    A cell holds either a *pure value* (``formula_ast is None``) or a
    formula; for formula cells ``value`` caches the last evaluated result.
    The AST and the extracted references are materialised lazily and
    memoised, since workload generation touches far more cells than it
    ever evaluates.
    """

    __slots__ = ("value", "_formula_text", "_formula_ast", "_references", "_template_key")

    def __init__(self, value=None, formula_text: str | None = None, formula_ast: Node | None = None):
        self.value = value
        self._formula_text = formula_text
        self._formula_ast = formula_ast
        self._references: list[ReferencedRange] | None = None
        self._template_key: str | None = None

    @property
    def is_formula(self) -> bool:
        return self._formula_text is not None or self._formula_ast is not None

    @property
    def formula_ast(self) -> Node | None:
        if self._formula_ast is None and self._formula_text is not None:
            self._formula_ast = parse_formula(self._formula_text)
        return self._formula_ast

    @property
    def formula_text(self) -> str | None:
        """The formula body without the leading ``=`` (None for pure values)."""
        if self._formula_text is None and self._formula_ast is not None:
            self._formula_text = self._formula_ast.to_formula()
        return self._formula_text

    @property
    def display_formula(self) -> str | None:
        text = self.formula_text
        return None if text is None else "=" + text

    def template_key(self, col: int, row: int) -> str:
        """The formula's R1C1 template key, memoised per cell.

        ``(col, row)`` is the cell's own position (cells don't know where
        they live; the sheet does).  Cells produced by autofill share one
        key, which is what lets the template registry compile a 10,000-row
        column exactly once.  Empty string for pure-value cells.
        """
        if self._template_key is None:
            from ..formula.r1c1 import to_r1c1  # deferred: keep Cell import-light

            ast = self.formula_ast
            self._template_key = "" if ast is None else to_r1c1(ast, col, row)
        return self._template_key

    @property
    def references(self) -> list[ReferencedRange]:
        """Ranges referenced by this cell's formula (empty for pure values)."""
        if self._references is None:
            ast = self.formula_ast
            self._references = [] if ast is None else extract_references(ast)
        return self._references

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_formula:
            return f"Cell(={self.formula_text}, value={self.value!r})"
        return f"Cell({self.value!r})"
