"""Autofill: replicating a source cell's pattern across adjacent cells.

Autofill is the reason tabular locality is prevalent (paper Sec. I and
III-A): dragging a formula fills neighbouring cells with the same formula
whose *relative* references are shifted by the offset while ``$``-fixed
references stay put.  Consequently a range without ``$`` generates RR
dependencies, ``A1:$B$4``-style generates RF, ``$B$1:B4`` generates FR and
fully absolute ranges generate FF — which is exactly the pattern set TACO
compresses.

The implementation shifts the parsed AST once per target cell and stores
the AST directly (no re-parse), so corpus generation scales to hundreds of
thousands of formula cells.
"""

from __future__ import annotations

from ..grid.range import Range
from .sheet import Sheet, _coerce_pos

__all__ = ["autofill", "fill_formula_column", "fill_formula_row"]


def autofill(sheet: Sheet, source, target: Range) -> int:
    """Fill ``target`` by repeating the pattern of the ``source`` cell.

    The source cell may lie inside or outside the target range; filling
    skips the source position itself.  Pure-value sources are copied
    verbatim (the constant-fill behaviour).  Returns the number of cells
    written.
    """
    src_col, src_row = _coerce_pos(source)
    cell = sheet.cell_at((src_col, src_row))
    if cell is None:
        raise ValueError(f"autofill source ({src_col},{src_row}) is empty")
    written = 0
    if cell.is_formula:
        ast = cell.formula_ast
        for col, row in target.cells():
            if (col, row) == (src_col, src_row):
                continue
            sheet.set_formula_ast((col, row), ast.shifted(col - src_col, row - src_row))
            written += 1
    else:
        for col, row in target.cells():
            if (col, row) == (src_col, src_row):
                continue
            sheet.set_value((col, row), cell.value)
            written += 1
    return written


def fill_formula_column(
    sheet: Sheet, col: int, first_row: int, last_row: int, formula: str
) -> int:
    """Write ``formula`` at ``(col, first_row)`` and autofill down to ``last_row``."""
    sheet.set_formula((col, first_row), formula)
    if last_row <= first_row:
        return 1
    autofill(sheet, (col, first_row), Range(col, first_row, col, last_row))
    return last_row - first_row + 1


def fill_formula_row(
    sheet: Sheet, row: int, first_col: int, last_col: int, formula: str
) -> int:
    """Write ``formula`` at ``(first_col, row)`` and autofill right to ``last_col``."""
    sheet.set_formula((first_col, row), formula)
    if last_col <= first_col:
        return 1
    autofill(sheet, (first_col, row), Range(first_col, row, last_col, row))
    return last_col - first_col + 1
