"""NoComp: the uncompressed formula graph baseline (paper Sec. IV-D).

Dependencies are stored raw in an adjacency list keyed by precedent range;
a spatial index over the vertices answers "which referenced ranges overlap
this query".  Finding dependents is a BFS whose frontier is made of
individual formula cells — no pattern knowledge, no compression — which is
precisely what makes it slow on spreadsheets with hundreds of thousands of
edges.

The vertex index is any registered spatial backend: :class:`NoCompGraph`
defaults to the R-Tree (the paper's NoComp) and
:class:`repro.graphs.calc.NoCompCalcGraph` selects the Calc-style
container index (the paper's NoComp-Calc).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from ..grid.range import Range
from ..grid.rangeset import RangeSet
from ..sheet.sheet import Dependency
from ..spatial.registry import IndexFactory, make_index
from .base import Budget, FormulaGraph, GraphStats

__all__ = ["NoCompGraph"]


class NoCompGraph(FormulaGraph):
    """Adjacency-list formula graph without compression."""

    name = "NoComp"

    def __init__(self, index: IndexFactory = "rtree"):
        self.index_spec = index
        # prec range -> list of dependent formula cells (col, row)
        self._adjacency: dict[Range, list[tuple[int, int]]] = {}
        # dep cell -> list of prec ranges
        self._reverse: dict[tuple[int, int], list[Range]] = {}
        self._prec_index = make_index(index)
        self._dep_index = make_index(index)
        self._edge_count = 0
        self._stats = GraphStats()

    # -- construction / maintenance -------------------------------------------

    def add_dependency(self, dep: Dependency, budget: Budget | None = None) -> None:
        prec, cell = dep.prec, dep.dep.head
        self._record(prec, cell, index=True)

    def _record(self, prec: Range, cell: tuple[int, int], index: bool) -> None:
        dependents = self._adjacency.get(prec)
        if dependents is None:
            self._adjacency[prec] = [cell]
            if index:
                self._prec_index.insert(prec, prec)
        else:
            dependents.append(cell)
        precs = self._reverse.get(cell)
        if precs is None:
            self._reverse[cell] = [prec]
            if index:
                self._dep_index.insert(Range.cell(*cell), cell)
        else:
            precs.append(prec)
        self._edge_count += 1

    def build(self, deps: Iterable[Dependency], budget: Budget | None = None) -> None:
        """Bulk construction: fill the adjacency first, then bulk-load the
        vertex indexes over the settled key sets (STR packing for the
        R-Tree) instead of inserting every vertex one at a time."""
        for dep in deps:
            if budget is not None:
                budget.check()
            self._record(dep.prec, dep.dep.head, index=False)
        self._prec_index.bulk_load((prec, prec) for prec in self._adjacency)
        self._dep_index.bulk_load(
            (Range.cell(*cell), cell) for cell in self._reverse
        )

    def clear_cells(self, rng: Range, budget: Budget | None = None) -> None:
        self._stats.index_searches += 1
        hits = self._dep_index.search_items(rng)
        for key, cell in hits:
            if budget is not None:
                budget.check()
            precs = self._reverse.pop(cell, [])
            self._dep_index.delete(key, cell)
            for prec in precs:
                dependents = self._adjacency.get(prec)
                if dependents is None:
                    continue
                dependents.remove(cell)
                self._edge_count -= 1
                if not dependents:
                    del self._adjacency[prec]
                    # Delete by key only: the index holds exactly one
                    # entry per unique prec range, and `prec` here comes
                    # from the _reverse list — an *equal* Range, but not
                    # necessarily the same object the index stores, so an
                    # identity-matched (key, payload) delete can miss and
                    # leave a stale entry behind.
                    self._prec_index.delete(prec)

    # -- queries ---------------------------------------------------------------

    def find_dependents(self, rng: Range, budget: Budget | None = None) -> list[Range]:
        """BFS over raw edges; the result is a list of single cells."""
        visited: set[tuple[int, int]] = set()
        queue: deque[Range] = deque([rng])
        while queue:
            frontier = queue.popleft()
            self._stats.index_searches += 1
            for prec, _ in self._prec_index.search_items(frontier):
                for cell in self._adjacency[prec]:
                    self._stats.edge_accesses += 1
                    if budget is not None:
                        budget.check()
                    if cell in visited:
                        continue
                    visited.add(cell)
                    queue.append(Range.cell(*cell))
        return [Range.cell(*cell) for cell in visited]

    def find_precedents(self, rng: Range, budget: Budget | None = None) -> list[Range]:
        result = RangeSet(index=self.index_spec)
        queue: deque[Range] = deque([rng])
        while queue:
            frontier = queue.popleft()
            self._stats.index_searches += 1
            for _, cell in self._dep_index.search_items(frontier):
                for prec in self._reverse[cell]:
                    self._stats.edge_accesses += 1
                    if budget is not None:
                        budget.check()
                    for fresh in result.add_new(prec):
                        queue.append(fresh)
        return result.ranges

    def direct_dependents(self, rng: Range) -> list[Range]:
        """One-hop dependents (no transitive closure)."""
        out: list[Range] = []
        seen: set[tuple[int, int]] = set()
        for prec, _ in self._prec_index.search_items(rng):
            for cell in self._adjacency[prec]:
                if cell not in seen:
                    seen.add(cell)
                    out.append(Range.cell(*cell))
        return out

    def direct_precedents(self, rng: Range) -> list[Range]:
        out: list[Range] = []
        seen: set[Range] = set()
        for _, cell in self._dep_index.search_items(rng):
            for prec in self._reverse[cell]:
                if prec not in seen:
                    seen.add(prec)
                    out.append(prec)
        return out

    # -- introspection -----------------------------------------------------------

    def stats(self) -> GraphStats:
        self._stats.vertices = len(self._adjacency) + len(self._reverse)
        self._stats.edges = self._edge_count
        return self._stats

    def edges(self) -> Iterable[tuple[Range, tuple[int, int]]]:
        for prec, dependents in self._adjacency.items():
            for cell in dependents:
                yield prec, cell

    def formula_cells(self) -> list[tuple[int, int]]:
        return list(self._reverse)

    def precedent_ranges(self) -> list[Range]:
        return list(self._adjacency)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name}Graph(edges={self._edge_count}, precs={len(self._adjacency)})"
