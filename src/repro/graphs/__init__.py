"""Formula-graph implementations: shared interface and baselines."""

from .base import Budget, DNFError, FormulaGraph, GraphStats, expand_cells, total_cells
from .calc import NoCompCalcGraph
from .nocomp import NoCompGraph

__all__ = [
    "Budget",
    "DNFError",
    "FormulaGraph",
    "GraphStats",
    "NoCompCalcGraph",
    "NoCompGraph",
    "expand_cells",
    "total_cells",
]
