"""NoComp-Calc: the OpenOffice-Calc-style baseline (paper Sec. VI-E).

Identical graph algorithms to NoComp, but the spatial index is the
container partitioning Calc uses instead of an R-Tree: the sheet space is
pre-partitioned into blocks, overlapping ranges register in each block
they touch, and very wide ranges fall into a broadcast list that every
lookup must scan.
"""

from __future__ import annotations

from ..grid.range import Range
from ..spatial.containers import ContainerIndex
from .nocomp import NoCompGraph

__all__ = ["NoCompCalcGraph"]


class _ContainerAdapter:
    """Uniform (key, payload) search surface over the container index."""

    __slots__ = ("_index",)

    def __init__(self):
        self._index = ContainerIndex()

    def insert(self, key: Range, payload) -> None:
        self._index.insert(key, payload)

    def delete(self, key: Range, payload) -> bool:
        return self._index.delete(key, payload)

    def search_items(self, query: Range) -> list[tuple[Range, object]]:
        return self._index.search(query)

    def __len__(self) -> int:
        return len(self._index)


class NoCompCalcGraph(NoCompGraph):
    name = "NoComp-Calc"

    def __init__(self):
        super().__init__(index_factory=_ContainerAdapter)
