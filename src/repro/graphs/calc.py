"""NoComp-Calc: the OpenOffice-Calc-style baseline (paper Sec. VI-E).

Identical graph algorithms to NoComp, but the spatial index is the
container partitioning Calc uses instead of an R-Tree: the sheet space is
pre-partitioned into blocks, overlapping ranges register in each block
they touch, and very wide ranges fall into a broadcast list that every
lookup must scan.  The swap is one registry name — both backends
implement :class:`repro.spatial.SpatialIndex`.
"""

from __future__ import annotations

from .nocomp import NoCompGraph

__all__ = ["NoCompCalcGraph"]


class NoCompCalcGraph(NoCompGraph):
    name = "NoComp-Calc"

    def __init__(self):
        super().__init__(index="container")
