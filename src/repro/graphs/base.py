"""Shared formula-graph interface, budgets, and helpers.

Every dependency-graph implementation in this repository — TACO, NoComp,
NoComp-Calc, and the external-system stand-ins — exposes the same small
surface: build from a dependency stream, find dependents/precedents of a
range, and maintain the graph under clears and inserts.  The benchmark
harness drives them interchangeably through this interface.

Long-running operations accept an optional :class:`Budget`; exceeding it
raises :class:`DNFError`, reproducing the paper's did-not-finish handling
(Sec. VI-D/E).
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator

from ..grid.range import Range
from ..sheet.sheet import Dependency

__all__ = ["Budget", "DNFError", "FormulaGraph", "GraphStats", "expand_cells"]


class DNFError(RuntimeError):
    """An operation exceeded its time budget (a paper-style DNF)."""

    def __init__(self, operation: str, limit_seconds: float):
        super().__init__(f"{operation} did not finish within {limit_seconds:.1f}s")
        self.operation = operation
        self.limit_seconds = limit_seconds


class Budget:
    """A wall-clock budget checked cooperatively inside long loops."""

    __slots__ = ("limit_seconds", "_deadline", "operation", "_counter", "check_every")

    def __init__(self, limit_seconds: float, operation: str = "operation", check_every: int = 256):
        self.limit_seconds = limit_seconds
        self.operation = operation
        self.check_every = check_every
        self._deadline = time.perf_counter() + limit_seconds
        self._counter = 0

    def check(self) -> None:
        """Cheap amortised deadline check; raises DNFError when exceeded."""
        self._counter += 1
        if self._counter % self.check_every:
            return
        if time.perf_counter() > self._deadline:
            raise DNFError(self.operation, self.limit_seconds)

    def check_now(self) -> None:
        if time.perf_counter() > self._deadline:
            raise DNFError(self.operation, self.limit_seconds)


class GraphStats:
    """Size and instrumentation counters reported by every graph."""

    __slots__ = ("vertices", "edges", "edge_accesses", "index_searches")

    def __init__(self, vertices: int = 0, edges: int = 0,
                 edge_accesses: int = 0, index_searches: int = 0):
        self.vertices = vertices
        self.edges = edges
        self.edge_accesses = edge_accesses
        self.index_searches = index_searches

    def as_dict(self) -> dict[str, int]:
        return {
            "vertices": self.vertices,
            "edges": self.edges,
            "edge_accesses": self.edge_accesses,
            "index_searches": self.index_searches,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GraphStats(vertices={self.vertices}, edges={self.edges})"


class FormulaGraph:
    """Abstract base for dependency graphs over one sheet."""

    name = "abstract"

    def add_dependency(self, dep: Dependency, budget: Budget | None = None) -> None:
        raise NotImplementedError

    def build(self, deps: Iterable[Dependency], budget: Budget | None = None) -> None:
        """Insert a stream of dependencies (the paper's graph construction)."""
        for dep in deps:
            if budget is not None:
                budget.check()
            self.add_dependency(dep, budget)

    def find_dependents(self, rng: Range, budget: Budget | None = None) -> list[Range]:
        raise NotImplementedError

    def find_precedents(self, rng: Range, budget: Budget | None = None) -> list[Range]:
        raise NotImplementedError

    def clear_cells(self, rng: Range, budget: Budget | None = None) -> None:
        """Remove the dependencies of the formula cells inside ``rng``."""
        raise NotImplementedError

    def stats(self) -> GraphStats:
        raise NotImplementedError

    @property
    def num_edges(self) -> int:
        return self.stats().edges

    @property
    def num_vertices(self) -> int:
        return self.stats().vertices


def expand_cells(ranges: Iterable[Range]) -> set[tuple[int, int]]:
    """Materialise a result-range list into its member cells (tests only)."""
    cells: set[tuple[int, int]] = set()
    for rng in ranges:
        cells.update(rng.cells())
    return cells


def iter_dependency_cells(ranges: Iterable[Range]) -> Iterator[tuple[int, int]]:
    for rng in ranges:
        yield from rng.cells()


def total_cells(ranges: Iterable[Range]) -> int:
    """Total cell count across disjoint result ranges."""
    return sum(rng.size for rng in ranges)
