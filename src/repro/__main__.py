"""Command-line interface: ``python -m repro <command>``.

Commands operate on real ``.xlsx`` files through the stdlib reader:

* ``report FILE``              — per-sheet compression report (Tables II-V style)
* ``trace FILE SHEET!CELL``    — dependents and precedents of a cell
* ``export FILE [--dot|--json] [--sheet NAME]`` — compressed graph export
* ``edit FILE [--set A1=5] [--formula B1=A1*2] [--clear C1] [--batch]
  [--insert-rows ROW[:N]] [--delete-rows ROW[:N]]
  [--insert-cols COL[:N]] [--delete-cols COL[:N]] [--journal WAL]``
  — apply edits and recalculate, per-edit or as one batched commit;
  structural edits run first and rewrite references workbook-wide;
  ``--journal`` appends every committed edit to a write-ahead journal
* ``snapshot FILE OUT [--journal WAL]`` — persist values, formula
  source, and the compressed per-sheet graphs; ``--journal`` starts a
  fresh paired journal
* ``restore SNAPSHOT [--journal WAL] [--out FILE]`` — reopen from a
  snapshot, replay the journal's complete-record prefix, recompute only
  the dirtied cells
* ``whatif FILE --scenario B1=1.03,B2=0.7 --output I1 [--workers N]``
  — evaluate what-if scenarios on one shared recalculation plan
  (:class:`repro.engine.ScenarioEngine`); the file is never modified
* ``demo PATH``                — write a demonstration workbook to PATH

``report``, ``trace``, ``export``, ``edit`` and ``whatif`` accept
``--index`` to select the spatial-index backend backing the graphs (see
:mod:`repro.spatial`).
"""

from __future__ import annotations

import argparse
import random
import sys

from .bench.reporting import ascii_table, format_pct
from .core.export import summarize_graph, to_adjacency_json, to_dot
from .core.taco_graph import TacoGraph, dependencies_column_major
from .graphs.nocomp import NoCompGraph
from .grid.range import Range
from .io import read_xlsx, write_xlsx
from .sheet.workbook import Workbook
from .spatial.registry import available_indexes

__all__ = ["main"]


def _build_graph(sheet, index: str = "rtree") -> TacoGraph:
    graph = TacoGraph.full(index=index)
    graph.build(dependencies_column_major(sheet))
    graph.rebuild_indexes()
    return graph


def _cmd_report(args: argparse.Namespace) -> int:
    workbook = read_xlsx(args.file)
    rows = []
    for sheet in workbook.sheets():
        deps = dependencies_column_major(sheet)
        if not deps:
            rows.append([sheet.name, 0, "-", "-", "-"])
            continue
        nocomp = NoCompGraph(index=args.index)
        nocomp.build(deps)
        taco = _build_graph(sheet, args.index)
        rows.append([
            sheet.name,
            len(deps),
            nocomp.stats().vertices,
            len(taco),
            format_pct(len(taco) / len(deps)),
        ])
    print(ascii_table(["sheet", "dependencies", "vertices", "TACO edges", "remaining"], rows))
    return 0


def _parse_target(target: str, workbook: Workbook):
    if "!" in target:
        sheet_name, cell = target.split("!", 1)
        return workbook.sheet(sheet_name), Range.from_a1(cell)
    return workbook.active_sheet, Range.from_a1(target)


def _cmd_trace(args: argparse.Namespace) -> int:
    workbook = read_xlsx(args.file)
    try:
        sheet, probe = _parse_target(args.cell, workbook)
    except KeyError:
        print(f"error: no such sheet in {args.cell!r}", file=sys.stderr)
        return 2
    graph = _build_graph(sheet, args.index)
    print(f"sheet {sheet.name}, probe {probe.to_a1()}")
    dependents = sorted(graph.find_dependents(probe), key=Range.as_tuple)
    print(f"\ndependents ({sum(r.size for r in dependents)} cells):")
    for rng in dependents[: args.limit]:
        print(f"  {rng.to_a1()}")
    if len(dependents) > args.limit:
        print(f"  ... and {len(dependents) - args.limit} more ranges")
    precedents = sorted(graph.find_precedents(probe), key=Range.as_tuple)
    print(f"\nprecedents ({sum(r.size for r in precedents)} cells):")
    for rng in precedents[: args.limit]:
        print(f"  {rng.to_a1()}")
    if len(precedents) > args.limit:
        print(f"  ... and {len(precedents) - args.limit} more ranges")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    workbook = read_xlsx(args.file)
    sheet = workbook.sheet(args.sheet) if args.sheet else workbook.active_sheet
    graph = _build_graph(sheet, args.index)
    if args.json:
        print(to_adjacency_json(graph))
    else:
        print(to_dot(graph, title=f"{sheet.name} formula graph"))
    print(f"// {summarize_graph(graph)}", file=sys.stderr)
    return 0


def _parse_assignment(spec: str) -> tuple[str, str]:
    if "=" not in spec:
        raise SystemExit(f"error: expected CELL=VALUE, got {spec!r}")
    cell, _, value = spec.partition("=")
    return cell, value


class _StructuralFlag(argparse.Action):
    """Collect every structural flag into one list, preserving the order
    the flags appeared on the command line (each op's index is
    interpreted in post-previous-op coordinates, so order matters)."""

    _OPS = {
        "--insert-rows": "insert_rows",
        "--delete-rows": "delete_rows",
        "--insert-cols": "insert_columns",
        "--delete-cols": "delete_columns",
    }

    def __call__(self, parser, namespace, values, option_string=None):
        recorded = getattr(namespace, "structural_ops", None)
        if recorded is None:
            recorded = []
            namespace.structural_ops = recorded
        recorded.append((self._OPS[option_string], values))


def _parse_structural(spec: str, column: bool) -> tuple[int, int]:
    """Parse ``INDEX[:COUNT]``; column indexes also accept letters (``C:2``)."""
    from .grid.ref import letters_to_col

    head, _, tail = spec.partition(":")
    try:
        count = int(tail) if tail else 1
        try:
            index = int(head)
        except ValueError:
            if not column:
                raise
            index = letters_to_col(head)
    except ValueError:
        raise SystemExit(f"error: expected INDEX[:COUNT], got {spec!r}")
    if index < 1 or count < 1:
        raise SystemExit(f"error: index and count must be positive, got {spec!r}")
    return index, count


def _cmd_edit(args: argparse.Namespace) -> int:
    """Apply a stream of edits and recalculate, per-edit or batched."""
    import time

    from .engine.recalc import CircularReferenceError, RecalcEngine

    workbook = read_xlsx(args.file)
    sheet = workbook.sheet(args.sheet) if args.sheet else workbook.active_sheet
    engine = RecalcEngine(sheet, _build_graph(sheet, args.index),
                          workers=args.workers)
    try:
        engine.recalculate_all()
    except CircularReferenceError as err:
        print(f"error: workbook has a pre-existing {err}", file=sys.stderr)
        return 1

    # Structural ops were collected in command-line order (one shared
    # list): each op's index is interpreted after the previous ones.
    structural: list[tuple[str, int, int]] = []
    for op, spec in getattr(args, "structural_ops", None) or ():
        index, count = _parse_structural(spec, column="columns" in op)
        structural.append((op, index, count))

    ops: list[tuple[str, str, str | None]] = []
    for spec in args.set or ():
        cell, value = _parse_assignment(spec)
        ops.append(("value", cell, value))
    for spec in args.formula or ():
        cell, text = _parse_assignment(spec)
        ops.append(("formula", cell, text))
    for cell in args.clear or ():
        ops.append(("clear", cell, None))
    if args.random:
        rng = random.Random(args.seed)
        values = [pos for pos, cell in sheet.items() if not cell.is_formula]
        if not values:
            print("error: --random needs value cells to edit", file=sys.stderr)
            return 2
        for _ in range(args.random):
            col, row = rng.choice(values)
            ops.append(("value", Range.cell(col, row).to_a1(),
                        str(float(rng.randrange(1000)))))
    if not ops and not structural:
        print("error: no edits given (--set/--formula/--clear/--random/"
              "--insert-rows/--delete-rows/--insert-cols/--delete-cols)",
              file=sys.stderr)
        return 2

    def coerce(value: str):
        try:
            return float(value)
        except ValueError:
            return value

    # Attach the journal only now, after every no-op/validation early
    # return: from here each committed edit appends one durable record.
    journal = None
    if args.journal:
        from .engine.journal import Journal, JournalFormatError

        try:
            journal = Journal(args.journal)
        except JournalFormatError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        if any(
            rec.get("kind") == "structural" or rec.get("structural")
            for rec in journal.preexisting_records
        ):
            # Structural records shift the grid: edits recorded now
            # against the *base* file would be replayed in post-shift
            # coordinates and land on the wrong cells.
            journal.close()
            print(
                f"error: {args.journal} already holds structural edits; "
                "appending edits against the base file would replay at "
                "shifted coordinates. Run `restore` and take a fresh "
                "snapshot (with a fresh journal) first.",
                file=sys.stderr,
            )
            return 2
        engine.journal = journal

    start = time.perf_counter()
    recomputed = 0
    try:
        if args.batch:
            with engine.begin_batch(workbook=workbook) as batch:
                for op, index, count in structural:
                    getattr(batch, op)(index, count)
                for kind, cell, payload in ops:
                    if kind == "value":
                        batch.set_value(cell, coerce(payload))
                    elif kind == "formula":
                        batch.set_formula(cell, payload)
                    else:
                        batch.clear_cell(cell)
            result = batch.result
            recomputed = result.recomputed
            print(
                f"batched commit: {result.ops} edits "
                f"({result.structural_ops} structural) -> "
                f"{len(result.cleared_ranges)} cleared ranges, "
                f"{result.edges_touched} edges touched, "
                f"repacked={result.repacked}"
            )
        else:
            for op, index, count in structural:
                result = getattr(engine, op)(index, count, workbook=workbook)
                recomputed += result.recomputed
                print(
                    f"{op} {index}:{count} -> {result.moved_cells} cells moved, "
                    f"{result.rewritten_formulas} formulas rewritten "
                    f"({result.cross_sheet_rewrites} cross-sheet), "
                    f"{result.ref_errors} #REF!, "
                    f"{result.maintenance.edges_touched} edges touched"
                )
            for kind, cell, payload in ops:
                if kind == "value":
                    recomputed += engine.set_value(cell, coerce(payload)).recomputed
                elif kind == "formula":
                    recomputed += engine.set_formula(cell, payload).recomputed
                else:
                    recomputed += engine.clear_cell(cell).recomputed
    except CircularReferenceError as err:
        print(f"error: {err}", file=sys.stderr)
        if journal is not None:
            journal.close()
        return 1
    elapsed = time.perf_counter() - start
    mode = "batched" if args.batch else "per-edit"
    print(f"{mode}: {len(ops) + len(structural)} edits, "
          f"{recomputed} cells recomputed in {elapsed * 1000:.1f} ms")
    if journal is not None:
        journal.close()
        print(f"journaled {journal.records_written} records to {args.journal}")
    if args.out:
        write_xlsx(workbook, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    """Persist a workbook snapshot (values + compressed per-sheet graphs)."""
    from .engine.recalc import CircularReferenceError, RecalcEngine

    workbook = read_xlsx(args.file)
    graphs = {}
    for sheet in workbook.sheets():
        graph = _build_graph(sheet, args.index)
        try:
            RecalcEngine(sheet, graph).recalculate_all()
        except CircularReferenceError as err:
            print(f"warning: {sheet.name}: {err} (cells marked #CYCLE!)",
                  file=sys.stderr)
        graphs[sheet.name] = graph
    stats = workbook.snapshot(args.snapshot, graphs)
    print(f"wrote {args.snapshot}: {stats.sheets} sheets, {stats.cells} cells, "
          f"{stats.edges} compressed edges, {stats.bytes_written:,} bytes")
    if args.journal:
        from .engine.journal import Journal

        Journal(args.journal, truncate=True,
                snapshot_id=stats.snapshot_id).close()
        print(f"started fresh journal {args.journal} "
              f"(paired with snapshot {stats.snapshot_id[:12]})")
    return 0


def _cmd_restore(args: argparse.Namespace) -> int:
    """Reopen a workbook from a snapshot plus its write-ahead journal."""
    from .engine.journal import JournalFormatError
    from .io.snapshot import SnapshotFormatError
    from .sheet.workbook import Workbook

    try:
        result = Workbook.restore(args.snapshot, args.journal,
                                  workers=args.workers)
    except (SnapshotFormatError, JournalFormatError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    workbook = result.workbook
    print(f"restored {workbook.name!r}: {len(workbook)} sheets "
          f"({', '.join(workbook.sheet_names)})")
    if args.journal:
        tail = " (torn tail cut)" if result.torn_tail else ""
        print(f"replayed {result.records_applied} journal records{tail}; "
              f"{result.dirty_count} dirty cells, "
              f"{result.recomputed} recomputed")
    for name, err in result.cycle_errors.items():
        print(f"warning: {name}: {err} (cells marked #CYCLE!)", file=sys.stderr)
    if args.out:
        write_xlsx(workbook, args.out)
        print(f"wrote {args.out}")
    return 0


def _parse_uniform(spec: str) -> "tuple[str, float, float]":
    """``CELL=LO:HI`` -> (cell, lo, hi) for a Monte Carlo uniform draw."""
    cell, bounds = _parse_assignment(spec)
    lo, sep, hi = bounds.partition(":")
    if not sep:
        raise ValueError(f"expected CELL=LO:HI, got {spec!r}")
    return cell, float(lo), float(hi)


def _cmd_whatif(args: argparse.Namespace) -> int:
    """Evaluate what-if scenarios on one shared recalculation plan."""
    from .engine.recalc import CircularReferenceError, RecalcEngine
    from .engine.scenario import ScenarioEngine

    if args.sample:
        if not args.uniform:
            print("error: --sample requires at least one --uniform CELL=LO:HI",
                  file=sys.stderr)
            return 2
    elif not args.scenario:
        print("error: give --scenario overrides, or --sample N with "
              "--uniform draws", file=sys.stderr)
        return 2

    workbook = read_xlsx(args.file)
    sheet = workbook.sheet(args.sheet) if args.sheet else workbook.active_sheet
    engine = RecalcEngine(sheet, _build_graph(sheet, args.index))
    try:
        engine.recalculate_all()
    except CircularReferenceError as err:
        print(f"error: workbook has a pre-existing {err}", file=sys.stderr)
        return 1

    def coerce(value: str):
        try:
            return float(value)
        except ValueError:
            return value

    scenarios: list[dict[str, object]] = []
    seeds: list[str] = []
    uniforms: list[tuple[str, float, float]] = []
    if args.sample:
        try:
            uniforms = [_parse_uniform(spec) for spec in args.uniform]
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        seeds = [cell for cell, _, _ in uniforms]
    else:
        for spec in args.scenario:
            overrides: dict[str, object] = {}
            for part in spec.split(","):
                cell, value = _parse_assignment(part)
                overrides[cell] = coerce(value)
                if cell not in seeds:
                    seeds.append(cell)
            scenarios.append(overrides)

    try:
        whatif = ScenarioEngine(engine, seeds)
        if args.sample:
            def draw(rng: random.Random) -> dict:
                return {cell: rng.uniform(lo, hi)
                        for cell, lo, hi in uniforms}

            results = whatif.sample(args.sample, draw, outputs=args.output,
                                    seed=args.seed, workers=args.workers)
        else:
            results = whatif.run(scenarios, args.output, workers=args.workers)
    except (ValueError, RuntimeError, CircularReferenceError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if args.sample:
        print(f"{args.sample} samples over {len(seeds)} seeds "
              f"(seed={args.seed}), shared plan of {whatif.plan_size} cells")
        rows = []
        for out in args.output:
            numeric = [r[out] for r in results
                       if isinstance(r[out], (int, float))
                       and not isinstance(r[out], bool)]
            if numeric:
                rows.append([out, len(numeric),
                             sum(numeric) / len(numeric),
                             min(numeric), max(numeric)])
            else:
                rows.append([out, 0, "-", "-", "-"])
        print(ascii_table(["output", "n", "mean", "min", "max"], rows))
        return 0
    print(f"{len(scenarios)} scenarios over {len(seeds)} seeds, "
          f"shared plan of {whatif.plan_size} cells")
    baseline = {out: sheet.get_value(out) for out in args.output}
    print(ascii_table(
        ["scenario"] + list(args.output),
        [["base"] + [baseline[out] for out in args.output]] + [
            [spec] + [result[out] for out in args.output]
            for spec, result in zip(args.scenario, results)
        ],
    ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Host workbooks in the async service and drive a mixed trace."""
    import asyncio
    import os
    import re
    import tempfile

    from .server import WorkbookService

    rng = random.Random(args.seed)
    workbooks = {}
    targets = {}
    for path in args.files:
        stem = os.path.splitext(os.path.basename(path))[0]
        wb_id = re.sub(r"[^A-Za-z0-9._-]", "_", stem) or "wb"
        while wb_id in workbooks:
            wb_id += "x"
        workbook = read_xlsx(path)
        sheet = workbook.active_sheet
        cells = sorted(sheet.positions())
        values = [pos for pos in cells if sheet.formula_at(pos) is None]
        targets[wb_id] = (sheet.name, cells[:2000], values[:2000])
        workbooks[wb_id] = workbook

    async def drive(data_dir: str) -> dict:
        async with WorkbookService(
            data_dir, max_resident=args.resident, fsync=not args.no_fsync
        ) as service:
            for wb_id, workbook in workbooks.items():
                await service.create_workbook(wb_id, workbook=workbook)
            ids = list(workbooks)
            submitted = []
            for _ in range(args.ops):
                wb_id = rng.choice(ids)
                sheet_name, cells, values = targets[wb_id]
                if values and rng.random() < args.write_ratio:
                    pos = rng.choice(values)
                    op, params = "set_cell", {
                        "cell": Range.cell(*pos).to_a1(),
                        "value": round(rng.uniform(1, 1000), 3),
                        "sheet": sheet_name,
                    }
                elif cells and rng.random() < 0.75:
                    pos = rng.choice(cells)
                    op, params = "get_cell", {
                        "cell": Range.cell(*pos).to_a1(), "sheet": sheet_name,
                    }
                else:
                    op, params = "summarize_sheet", {"sheet": sheet_name}
                submitted.append(service.execute(wb_id, op, params))
                if len(submitted) >= 16:
                    await asyncio.gather(*submitted)
                    submitted.clear()
            if submitted:
                await asyncio.gather(*submitted)
            for wb_id in ids:
                await service.execute(wb_id, "recalculate")
            return service.stats()

    if args.data_dir is not None:
        stats = asyncio.run(drive(args.data_dir))
    else:
        with tempfile.TemporaryDirectory() as tmp:
            stats = asyncio.run(drive(tmp))

    print(f"{len(workbooks)} workbooks, {args.ops} ops "
          f"(write ratio {args.write_ratio}), max resident {args.resident}")
    print(ascii_table(
        ["op", "count", "errors", "mean ms", "max ms"],
        [[name, s["count"], s["errors"],
          round(s["mean_seconds"] * 1e3, 3), round(s["max_seconds"] * 1e3, 3)]
         for name, s in stats["per_op"].items()],
    ))
    print(f"throughput      : {stats['ops_per_second']:.0f} ops/sec")
    print(f"evictions       : {stats['evictions']}, "
          f"re-admissions: {stats['readmissions']}")
    print(f"journal records : {stats['journal_records']}, "
          f"background cells: {stats['background_cells']}")
    print(f"queue depth     : mean {stats['mean_queue_depth']:.2f}, "
          f"max {stats['max_queue_depth']}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .datasets.regions import build_region

    rng = random.Random(args.seed)
    workbook = Workbook("demo")
    sheet = workbook.add_sheet("Demo")
    build_region(sheet, "fig2", 1, 2, args.rows, rng)
    build_region(sheet, "fixed_lookup", 6, 2, args.rows // 2, rng)
    build_region(sheet, "running_total", 12, 2, args.rows // 2, rng)
    write_xlsx(workbook, args.path)
    print(f"wrote {args.path}: {len(sheet)} cells, "
          f"{sheet.formula_count} formulae")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TACO: compressed spreadsheet formula graphs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_index_option(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--index",
            default="rtree",
            choices=available_indexes(),
            help="spatial-index backend for the graphs (default: rtree)",
        )

    report = sub.add_parser("report", help="per-sheet compression report")
    report.add_argument("file")
    add_index_option(report)
    report.set_defaults(fn=_cmd_report)

    trace = sub.add_parser("trace", help="trace dependents/precedents of a cell")
    trace.add_argument("file")
    trace.add_argument("cell", help="A1 address, optionally Sheet!A1")
    trace.add_argument("--limit", type=int, default=20)
    add_index_option(trace)
    trace.set_defaults(fn=_cmd_trace)

    export = sub.add_parser("export", help="export the compressed graph")
    export.add_argument("file")
    export.add_argument("--sheet", default=None)
    export.add_argument("--json", action="store_true", help="JSON instead of dot")
    add_index_option(export)
    export.set_defaults(fn=_cmd_export)

    edit = sub.add_parser("edit", help="apply edits and recalculate")
    edit.add_argument("file")
    edit.add_argument("--sheet", default=None)
    edit.add_argument("--set", action="append", metavar="CELL=VALUE",
                      help="write a value (repeatable)")
    edit.add_argument("--formula", action="append", metavar="CELL=EXPR",
                      help="write a formula (repeatable)")
    edit.add_argument("--clear", action="append", metavar="CELL",
                      help="erase a cell (repeatable)")
    edit.add_argument("--random", type=int, default=0, metavar="N",
                      help="append N random value edits (workload demo)")
    edit.add_argument("--insert-rows", action=_StructuralFlag, metavar="ROW[:N]",
                      help="insert N blank rows before ROW (repeatable; "
                           "structural edits run before cell edits, in the "
                           "order the flags appear)")
    edit.add_argument("--delete-rows", action=_StructuralFlag, metavar="ROW[:N]",
                      help="delete N rows starting at ROW (repeatable)")
    edit.add_argument("--insert-cols", action=_StructuralFlag, metavar="COL[:N]",
                      help="insert N blank columns before COL "
                           "(number or letter; repeatable)")
    edit.add_argument("--delete-cols", action=_StructuralFlag, metavar="COL[:N]",
                      help="delete N columns starting at COL (repeatable)")
    edit.add_argument("--seed", type=int, default=7)
    edit.add_argument("--workers", type=int, default=None, metavar="N",
                      help="recalculate independent dirty regions on N "
                           "workers (default: REPRO_RECALC_WORKERS)")
    edit.add_argument("--batch", action="store_true",
                      help="commit all edits as one batched session "
                           "(coalesced maintenance + single recalc)")
    edit.add_argument("--journal", default=None, metavar="WAL",
                      help="append every committed edit to this "
                           "write-ahead journal (fsync'd per commit)")
    edit.add_argument("--out", default=None, help="write the result to OUT")
    add_index_option(edit)
    edit.set_defaults(fn=_cmd_edit)

    snapshot = sub.add_parser(
        "snapshot",
        help="persist values + compressed graphs for rebuild-free reopening",
    )
    snapshot.add_argument("file", help="source .xlsx workbook")
    snapshot.add_argument("snapshot", help="snapshot file to write")
    snapshot.add_argument("--journal", default=None, metavar="WAL",
                          help="also start a fresh write-ahead journal "
                               "paired with the snapshot")
    add_index_option(snapshot)
    snapshot.set_defaults(fn=_cmd_snapshot)

    restore = sub.add_parser(
        "restore",
        help="reopen from a snapshot, replaying a write-ahead journal",
    )
    restore.add_argument("snapshot", help="snapshot file to read")
    restore.add_argument("--journal", default=None, metavar="WAL",
                         help="replay this journal's complete-record prefix")
    restore.add_argument("--workers", type=int, default=None, metavar="N",
                         help="replay recalculation on N workers "
                              "(default: REPRO_RECALC_WORKERS)")
    restore.add_argument("--out", default=None,
                         help="write the restored workbook to OUT (.xlsx)")
    restore.set_defaults(fn=_cmd_restore)

    whatif = sub.add_parser(
        "whatif",
        help="evaluate what-if scenarios on one shared recalculation plan",
    )
    whatif.add_argument("file")
    whatif.add_argument("--sheet", default=None)
    whatif.add_argument("--scenario", action="append", default=[],
                        metavar="CELL=VALUE[,CELL=VALUE...]",
                        help="one scenario's seed overrides (repeatable); "
                             "cells a scenario omits keep their base values")
    whatif.add_argument("--output", action="append", required=True,
                        metavar="CELL", help="cell to report per scenario "
                        "(repeatable)")
    whatif.add_argument("--sample", type=int, default=0, metavar="N",
                        help="Monte Carlo: run N sampled scenarios instead "
                             "of --scenario (needs --uniform draws)")
    whatif.add_argument("--uniform", action="append", default=[],
                        metavar="CELL=LO:HI",
                        help="draw CELL uniformly from [LO, HI] per sample "
                             "(repeatable; used with --sample)")
    whatif.add_argument("--seed", type=int, default=0,
                        help="RNG seed for --sample; equal seeds give "
                             "bit-identical sweeps regardless of --workers "
                             "(default: 0)")
    whatif.add_argument("--workers", type=int, default=None, metavar="N",
                        help="replay scenarios on N process workers "
                             "(default: REPRO_RECALC_WORKERS)")
    add_index_option(whatif)
    whatif.set_defaults(fn=_cmd_whatif)

    serve = sub.add_parser(
        "serve",
        help="host workbooks in the async multi-tenant service "
             "and drive a mixed read/write trace",
    )
    serve.add_argument("files", nargs="+", help="xlsx workbooks to host")
    serve.add_argument("--ops", type=int, default=500,
                       help="trace length (default: 500)")
    serve.add_argument("--resident", type=int, default=4, metavar="N",
                       help="LRU capacity: max workbooks in memory (default: 4)")
    serve.add_argument("--write-ratio", type=float, default=0.2,
                       help="fraction of ops that write (default: 0.2)")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--data-dir", default=None,
                       help="snapshot+journal directory (default: a temp dir)")
    serve.add_argument("--no-fsync", action="store_true",
                       help="skip per-record fsync (faster, less durable)")
    serve.set_defaults(fn=_cmd_serve)

    demo = sub.add_parser("demo", help="write a demonstration workbook")
    demo.add_argument("path")
    demo.add_argument("--rows", type=int, default=300)
    demo.add_argument("--seed", type=int, default=7)
    demo.set_defaults(fn=_cmd_demo)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    finally:
        # Commands that recalculated with workers= or shards= left process
        # pools resident for reuse; a CLI invocation is one-shot.
        from .engine.parallel import shutdown_pools

        shutdown_pools()


if __name__ == "__main__":
    sys.exit(main())
