"""Percentile and CDF helpers for the evaluation tables and figures."""

from __future__ import annotations

from typing import Iterable, NamedTuple

__all__ = ["percentile", "Summary", "summarize", "cdf_points"]


def percentile(values: "list[float]", q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100]) of a non-empty list."""
    if not values:
        raise ValueError("percentile of empty list")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


class Summary(NamedTuple):
    """The statistics the paper's Tables III/IV report."""

    minimum: float
    p25: float
    median: float
    mean: float
    p75: float
    maximum: float

    @classmethod
    def of(cls, values: Iterable[float]) -> "Summary":
        data = list(values)
        if not data:
            raise ValueError("summary of empty data")
        return cls(
            minimum=min(data),
            p25=percentile(data, 25),
            median=percentile(data, 50),
            mean=sum(data) / len(data),
            p75=percentile(data, 75),
            maximum=max(data),
        )


def cdf_points(values: "list[float]", points: "list[float] | None" = None) -> list[tuple[float, float]]:
    """(percentile, value) pairs for rendering a CDF as a table.

    Default percentile grid matches the paper's CDF figures, which focus
    on the upper tail (y axis starts at 0.4).
    """
    if points is None:
        points = [40, 50, 60, 70, 80, 90, 95, 99, 100]
    return [(p, percentile(values, p)) for p in points]
