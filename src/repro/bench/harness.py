"""Timing utilities with paper-style DNF handling.

Every expensive operation in the evaluation can *did-not-finish* (DNF):
the paper caps graph construction at 300s and RedisGraph queries at 60s
(Sec. VI-D/E).  :func:`measure` runs a callable under a
:class:`~repro.graphs.base.Budget` and reports either the elapsed time or
a DNF marker, which the reporting layer renders as the paper's red X.
"""

from __future__ import annotations

import gc
import time
from typing import Callable, NamedTuple

from ..graphs.base import Budget, DNFError

__all__ = ["Measurement", "measure", "time_call", "best_of"]


class Measurement(NamedTuple):
    """One timed operation: elapsed seconds, DNF flag, and the result."""

    seconds: float
    dnf: bool
    result: object = None
    error: str = ""

    @property
    def millis(self) -> float:
        return self.seconds * 1000.0

    def render(self) -> str:
        if self.dnf:
            return "X (DNF)"
        if self.millis >= 1000:
            return f"{self.seconds:,.2f} s"
        return f"{self.millis:,.2f} ms"


def time_call(fn: Callable[[], object]) -> tuple[float, object]:
    """Single timed call (no budget)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def measure(
    fn: Callable[..., object],
    budget_seconds: float | None = None,
    operation: str = "operation",
    disable_gc: bool = False,
) -> Measurement:
    """Run ``fn`` (optionally passing it a budget) and time it.

    ``fn`` is called as ``fn(budget)`` when a budget is given and the
    callable accepts it, else as ``fn()``.  A raised
    :class:`~repro.graphs.base.DNFError` or :class:`MemoryError` becomes a
    DNF measurement rather than an exception.
    """
    budget = Budget(budget_seconds, operation) if budget_seconds is not None else None
    gc_was_enabled = gc.isenabled()
    if disable_gc:
        gc.disable()
    start = time.perf_counter()
    try:
        result = fn(budget) if budget is not None else fn()
    except DNFError as exc:
        return Measurement(time.perf_counter() - start, True, None, str(exc))
    except MemoryError as exc:
        return Measurement(time.perf_counter() - start, True, None, f"memory: {exc}")
    finally:
        if disable_gc and gc_was_enabled:
            gc.enable()
    return Measurement(time.perf_counter() - start, False, result)


def best_of(fn: Callable[[], object], repeats: int = 3) -> Measurement:
    """Minimum-of-N timing for cheap, repeatable operations."""
    best = None
    result = None
    for _ in range(max(1, repeats)):
        elapsed, result = time_call(fn)
        if best is None or elapsed < best:
            best = elapsed
    return Measurement(best, False, result)
