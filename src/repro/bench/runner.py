"""Shared, cached corpus state for the benchmark suite.

Building corpora and graphs dominates benchmark wall-clock, and several
benchmarks need the same artefacts (the TACO graph of every sheet, the
probe cells, ...).  This module materialises each corpus once per process
and caches derived state lazily per sheet.
"""

from __future__ import annotations

from ..core.taco_graph import TacoGraph, dependencies_column_major
from ..datasets.corpora import corpus_specs
from ..datasets.stats import longest_path, max_dependents
from ..graphs.base import Budget
from ..graphs.calc import NoCompCalcGraph
from ..graphs.nocomp import NoCompGraph
from ..grid.range import Range
from ..sheet.sheet import Dependency, Sheet
from ..spatial.registry import IndexFactory

__all__ = ["BenchSheet", "get_corpus", "top_sheets"]

_CORPUS_CACHE: dict[str, list["BenchSheet"]] = {}


class BenchSheet:
    """One corpus sheet plus lazily cached derived artefacts."""

    def __init__(self, corpus: str, spec):
        self.corpus = corpus
        self.spec = spec
        self._sheet: Sheet | None = None
        self._deps: list[Dependency] | None = None
        self._taco: TacoGraph | None = None
        self._inrow: TacoGraph | None = None
        self._nocomp: NoCompGraph | None = None
        self._max_dep: tuple[Range, int] | None = None
        self._longest: tuple[Range, int] | None = None

    @property
    def name(self) -> str:
        return self.spec.name

    def sheet(self) -> Sheet:
        if self._sheet is None:
            from ..datasets.generator import generate_sheet

            self._sheet = generate_sheet(self.spec)
        return self._sheet

    def deps(self) -> list[Dependency]:
        if self._deps is None:
            self._deps = dependencies_column_major(self.sheet())
        return self._deps

    # -- cached graphs ------------------------------------------------------

    def taco(self) -> TacoGraph:
        if self._taco is None:
            self._taco = self.fresh_taco()
        return self._taco

    def inrow(self) -> TacoGraph:
        if self._inrow is None:
            self._inrow = self.fresh_inrow()
        return self._inrow

    def nocomp(self) -> NoCompGraph:
        if self._nocomp is None:
            self._nocomp = self.fresh_nocomp()
        return self._nocomp

    # -- fresh builds (for build-time measurements) -----------------------------

    def fresh_taco(
        self, budget: Budget | None = None, index: IndexFactory = "rtree"
    ) -> TacoGraph:
        graph = TacoGraph.full(index=index)
        graph.build(self.deps(), budget)
        graph.rebuild_indexes()  # production path: build_from_sheet repacks
        return graph

    def fresh_inrow(self, budget: Budget | None = None) -> TacoGraph:
        graph = TacoGraph.inrow()
        graph.build(self.deps(), budget)
        graph.rebuild_indexes()
        return graph

    def fresh_nocomp(
        self, budget: Budget | None = None, index: IndexFactory = "rtree"
    ) -> NoCompGraph:
        graph = NoCompGraph(index=index)
        graph.build(self.deps(), budget)
        return graph

    def fresh_calc(self, budget: Budget | None = None) -> NoCompCalcGraph:
        graph = NoCompCalcGraph()
        graph.build(self.deps(), budget)
        return graph

    # -- probe cells ----------------------------------------------------------------

    def max_dependents_probe(self) -> tuple[Range, int]:
        """(cell, count) for the Maximum-Dependents query case."""
        if self._max_dep is None:
            self._max_dep = max_dependents(self.taco())
        return self._max_dep

    def longest_path_probe(self) -> tuple[Range, int]:
        """(cell, length) for the Longest-Path query case."""
        if self._longest is None:
            self._longest = longest_path(self.nocomp())
        return self._longest

    def modify_range(self, length: int = 1000) -> Range:
        """The paper's modification workload: clear a column of ``length``
        cells starting at the cell with the most dependents.

        The max-dependents cell is usually a data cell; clearing data does
        not change the formula graph, so the workload anchors at that
        cell's largest run of *formula* dependents — the column whose
        removal actually exercises graph maintenance.
        """
        cell, _ = self.max_dependents_probe()
        dependents = self.taco().find_dependents(cell)
        if dependents:
            anchor = max(dependents, key=lambda r: r.size)
            return Range(anchor.c1, anchor.r1, anchor.c1, anchor.r1 + length - 1)
        return Range(cell.c1, cell.r1, cell.c1, cell.r1 + length - 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BenchSheet({self.name})"


def get_corpus(name: str) -> list[BenchSheet]:
    """All sheets of a corpus, cached for the process lifetime."""
    cached = _CORPUS_CACHE.get(name)
    if cached is None:
        cached = [BenchSheet(cs.corpus, cs.spec) for cs in corpus_specs(name)]
        _CORPUS_CACHE[name] = cached
    return cached


def top_sheets(name: str, key, count: int = 10) -> list[BenchSheet]:
    """The ``count`` sheets maximising ``key`` (e.g. TACO build time)."""
    sheets = get_corpus(name)
    return sorted(sheets, key=key, reverse=True)[:count]
