"""ASCII rendering of the paper's tables and figures.

Benchmarks print their artifacts with these helpers so a run of
``pytest benchmarks/ --benchmark-only`` regenerates, in text form, every
table and (as percentile tables) every CDF/latency figure of Sec. VI.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["ascii_table", "format_count", "format_ms", "format_pct", "banner"]


def banner(title: str, subtitle: str = "") -> str:
    lines = ["", "=" * 78, title]
    if subtitle:
        lines.append(subtitle)
    lines.append("=" * 78)
    return "\n".join(lines)


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                align_right: bool = True) -> str:
    """Render a simple boxed table; all cells are str()-ed."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        padded = []
        for i, width in enumerate(widths):
            cell = cells[i] if i < len(cells) else ""
            padded.append(cell.rjust(width) if (align_right and i > 0) else cell.ljust(width))
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = [separator, fmt_row(list(headers)), separator]
    lines.extend(fmt_row(row) for row in text_rows)
    lines.append(separator)
    return "\n".join(lines)


def format_count(value: float) -> str:
    if value >= 1_000_000:
        return f"{value / 1_000_000:.1f}M"
    if value >= 10_000:
        return f"{value / 1_000:.1f}K"
    return f"{value:,.0f}" if float(value).is_integer() else f"{value:,.1f}"


def format_ms(seconds: float) -> str:
    millis = seconds * 1000.0
    if millis >= 10_000:
        return f"{seconds:,.1f} s"
    if millis >= 100:
        return f"{millis:,.0f} ms"
    if millis >= 1:
        return f"{millis:,.2f} ms"
    return f"{millis:,.3f} ms"


def format_pct(fraction: float) -> str:
    pct = fraction * 100.0
    if pct >= 10:
        return f"{pct:.1f}%"
    if pct >= 0.1:
        return f"{pct:.2f}%"
    return f"{pct:.4f}%"
