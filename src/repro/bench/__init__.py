"""Benchmark harness: timing, DNF handling, percentiles, reporting."""

from .harness import Measurement, best_of, measure, time_call
from .percentiles import Summary, cdf_points, percentile
from .reporting import ascii_table, banner, format_count, format_ms, format_pct
from .runner import BenchSheet, get_corpus, top_sheets

__all__ = [
    "BenchSheet",
    "Measurement",
    "Summary",
    "ascii_table",
    "banner",
    "best_of",
    "cdf_points",
    "format_count",
    "format_ms",
    "format_pct",
    "get_corpus",
    "measure",
    "percentile",
    "time_call",
    "top_sheets",
]
