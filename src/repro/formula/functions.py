"""Builtin spreadsheet function library.

Covers the functions that appear in the paper's motivating workloads
(SUM/IF/VLOOKUP-style sheets) plus the everyday math, text, logical,
statistical and lookup builtins needed to evaluate realistic spreadsheets.

Functions are registered in :data:`REGISTRY`.  Eager functions receive
pre-evaluated values (scalars or :class:`RangeValue`); *lazy* functions
(IF, AND, IFERROR, ...) receive the evaluation context and unevaluated AST
nodes so they can short-circuit and tolerate errors.
"""

from __future__ import annotations

import fnmatch
import math
from typing import Callable, NamedTuple

from ..grid.range import Range
from .errors import NA_ERROR, NUM_ERROR, REF_ERROR, VALUE_ERROR, ExcelError
from .numeric import fsum_count
from .values import (
    ErrorSignal,
    RangeValue,
    compare_values,
    safe_divide,
    to_bool,
    to_number,
    to_text,
)

__all__ = ["REGISTRY", "FunctionSpec", "parse_criteria"]


class FunctionSpec(NamedTuple):
    name: str
    impl: Callable
    lazy: bool = False
    min_args: int = 0
    max_args: int | None = None


REGISTRY: dict[str, FunctionSpec] = {}


def _register(name: str, *, lazy: bool = False, min_args: int = 0, max_args: int | None = None):
    def decorator(fn: Callable) -> Callable:
        REGISTRY[name] = FunctionSpec(name, fn, lazy, min_args, max_args)
        return fn

    return decorator


def _alias(name: str, target: str) -> None:
    spec = REGISTRY[target]
    REGISTRY[name] = spec._replace(name=name)


# ---------------------------------------------------------------------------
# helpers


def _iter_numbers(values):
    """Numbers from a mixed argument list, lazily.

    Direct scalar arguments are coerced (so ``SUM("3")`` works); range
    arguments contribute only their numeric cells, per Excel.  This is
    the non-materialising path: single-pass aggregates (SUM/AVERAGE/
    MIN/MAX/PRODUCT) consume it without ever building the full list —
    on a 100k-cell range that is the difference between O(1) and O(n)
    transient allocation (see ``benchmarks/bench_micro_aggregates.py``).
    """
    for value in values:
        if isinstance(value, RangeValue):
            yield from value.iter_numbers()
        elif value is None:
            continue
        else:
            yield to_number(value)


def _flatten_numbers(values) -> list[float]:
    """Materialised form of :func:`_iter_numbers`, for the aggregates
    that genuinely need every element at once (MEDIAN, STDEV, ...)."""
    return list(_iter_numbers(values))


def _flatten_all(values) -> list[object]:
    out: list[object] = []
    for value in values:
        if isinstance(value, RangeValue):
            out.extend(value.iter_nonblank())
        else:
            out.append(value)
    return out


def parse_criteria(criterion) -> Callable[[object], bool]:
    """Compile a SUMIF/COUNTIF criterion into a predicate.

    Supports the comparison-prefixed forms (``">=5"``, ``"<>x"``), numeric
    equality, and text equality with ``*``/``?`` wildcards.
    """
    if isinstance(criterion, RangeValue):
        criterion = criterion.get(0, 0) if criterion.width == criterion.height == 1 else None
    if isinstance(criterion, str):
        text = criterion
        for op in ("<>", "<=", ">=", "=", "<", ">"):
            if text.startswith(op):
                body = text[len(op):]
                try:
                    target: object = float(body)
                    numeric = True
                except ValueError:
                    target = body
                    numeric = False

                def predicate(value, op=op, target=target, numeric=numeric):
                    if value is None:
                        return False
                    if numeric and not isinstance(value, (int, float)):
                        return op == "<>"
                    if not numeric and not isinstance(value, str):
                        return op == "<>"
                    try:
                        cmp = compare_values(value, target)
                    except ErrorSignal:
                        return False
                    return {
                        "=": cmp == 0, "<>": cmp != 0,
                        "<": cmp < 0, "<=": cmp <= 0,
                        ">": cmp > 0, ">=": cmp >= 0,
                    }[op]

                return predicate
        if "*" in text or "?" in text:
            pattern = text.lower()
            return lambda value: isinstance(value, str) and fnmatch.fnmatchcase(
                value.lower(), pattern
            )
        try:
            target_num = float(text)
            return lambda value: isinstance(value, (int, float)) and not isinstance(
                value, bool
            ) and float(value) == target_num
        except ValueError:
            return lambda value: isinstance(value, str) and value.lower() == text.lower()
    if isinstance(criterion, bool):
        return lambda value: isinstance(value, bool) and value == criterion
    if isinstance(criterion, (int, float)):
        target_num = float(criterion)
        return lambda value: isinstance(value, (int, float)) and not isinstance(
            value, bool
        ) and float(value) == target_num
    if criterion is None:
        return lambda value: value is None
    raise ErrorSignal(VALUE_ERROR)


# ---------------------------------------------------------------------------
# math and aggregates


@_register("SUM")
def _sum(ctx, *values):
    return math.fsum(_iter_numbers(values))


@_register("PRODUCT")
def _product(ctx, *values):
    out = 1.0
    for number in _iter_numbers(values):
        out *= number
    return out


@_register("AVERAGE", min_args=1)
def _average(ctx, *values):
    # One non-materialising pass; fsum_count is bit-identical to
    # fsum-over-a-list, so this matches the historical behaviour exactly.
    total, count = fsum_count(_iter_numbers(values))
    return safe_divide(total, count)


_alias("AVG", "AVERAGE")


@_register("MIN")
def _min(ctx, *values):
    return min(_iter_numbers(values), default=0.0)


@_register("MAX")
def _max(ctx, *values):
    return max(_iter_numbers(values), default=0.0)


@_register("COUNT")
def _count(ctx, *values):
    total = 0
    for value in values:
        if isinstance(value, RangeValue):
            total += sum(1 for _ in value.iter_numbers())
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            total += 1
    return float(total)


@_register("COUNTA")
def _counta(ctx, *values):
    return float(sum(1 for v in _flatten_all(values) if v is not None))


@_register("COUNTBLANK", min_args=1, max_args=1)
def _countblank(ctx, rng):
    if not isinstance(rng, RangeValue):
        return 0.0 if rng is not None else 1.0
    occupied = sum(1 for v in rng.iter_nonblank() if v is not None)
    return float(rng.range.size - occupied)


@_register("MEDIAN", min_args=1)
def _median(ctx, *values):
    numbers = sorted(_flatten_numbers(values))
    if not numbers:
        raise ErrorSignal(NUM_ERROR)
    mid = len(numbers) // 2
    if len(numbers) % 2:
        return numbers[mid]
    return (numbers[mid - 1] + numbers[mid]) / 2.0


@_register("STDEV", min_args=1)
def _stdev(ctx, *values):
    numbers = _flatten_numbers(values)
    if len(numbers) < 2:
        raise ErrorSignal(ExcelError("#DIV/0!"))
    mean = math.fsum(numbers) / len(numbers)
    return math.sqrt(math.fsum((x - mean) ** 2 for x in numbers) / (len(numbers) - 1))


@_register("VAR", min_args=1)
def _var(ctx, *values):
    numbers = _flatten_numbers(values)
    if len(numbers) < 2:
        raise ErrorSignal(ExcelError("#DIV/0!"))
    mean = math.fsum(numbers) / len(numbers)
    return math.fsum((x - mean) ** 2 for x in numbers) / (len(numbers) - 1)


@_register("SMALL", min_args=2, max_args=2)
def _small(ctx, values, k):
    numbers = sorted(_flatten_numbers([values]))
    index = int(to_number(k))
    if index < 1 or index > len(numbers):
        raise ErrorSignal(NUM_ERROR)
    return numbers[index - 1]


@_register("LARGE", min_args=2, max_args=2)
def _large(ctx, values, k):
    numbers = sorted(_flatten_numbers([values]), reverse=True)
    index = int(to_number(k))
    if index < 1 or index > len(numbers):
        raise ErrorSignal(NUM_ERROR)
    return numbers[index - 1]


@_register("ABS", min_args=1, max_args=1)
def _abs(ctx, value):
    return abs(to_number(value))


@_register("SIGN", min_args=1, max_args=1)
def _sign(ctx, value):
    number = to_number(value)
    return float((number > 0) - (number < 0))


@_register("INT", min_args=1, max_args=1)
def _int(ctx, value):
    return float(math.floor(to_number(value)))


@_register("ROUND", min_args=1, max_args=2)
def _round(ctx, value, digits=0.0):
    number, nd = to_number(value), int(to_number(digits))
    scale = 10.0 ** nd
    # Excel rounds half away from zero, not banker's rounding.
    return math.floor(abs(number) * scale + 0.5) / scale * (1 if number >= 0 else -1)


@_register("ROUNDUP", min_args=1, max_args=2)
def _roundup(ctx, value, digits=0.0):
    number, nd = to_number(value), int(to_number(digits))
    scale = 10.0 ** nd
    return math.ceil(abs(number) * scale - 1e-12) / scale * (1 if number >= 0 else -1)


@_register("ROUNDDOWN", min_args=1, max_args=2)
def _rounddown(ctx, value, digits=0.0):
    number, nd = to_number(value), int(to_number(digits))
    scale = 10.0 ** nd
    return math.floor(abs(number) * scale + 1e-12) / scale * (1 if number >= 0 else -1)


@_register("SQRT", min_args=1, max_args=1)
def _sqrt(ctx, value):
    number = to_number(value)
    if number < 0:
        raise ErrorSignal(NUM_ERROR)
    return math.sqrt(number)


@_register("POWER", min_args=2, max_args=2)
def _power(ctx, base, exponent):
    try:
        result = to_number(base) ** to_number(exponent)
    except (OverflowError, ZeroDivisionError, ValueError):
        raise ErrorSignal(NUM_ERROR) from None
    if isinstance(result, complex):
        raise ErrorSignal(NUM_ERROR)
    return float(result)


@_register("MOD", min_args=2, max_args=2)
def _mod(ctx, value, divisor):
    d = to_number(divisor)
    if d == 0:
        raise ErrorSignal(ExcelError("#DIV/0!"))
    return math.fmod(math.fmod(to_number(value), d) + d, d)


@_register("EXP", min_args=1, max_args=1)
def _exp(ctx, value):
    try:
        return math.exp(to_number(value))
    except OverflowError:
        raise ErrorSignal(NUM_ERROR) from None


@_register("LN", min_args=1, max_args=1)
def _ln(ctx, value):
    number = to_number(value)
    if number <= 0:
        raise ErrorSignal(NUM_ERROR)
    return math.log(number)


@_register("LOG", min_args=1, max_args=2)
def _log(ctx, value, base=10.0):
    number, b = to_number(value), to_number(base)
    if number <= 0 or b <= 0 or b == 1:
        raise ErrorSignal(NUM_ERROR)
    return math.log(number, b)


@_register("LOG10", min_args=1, max_args=1)
def _log10(ctx, value):
    number = to_number(value)
    if number <= 0:
        raise ErrorSignal(NUM_ERROR)
    return math.log10(number)


@_register("PI", max_args=0)
def _pi(ctx):
    return math.pi


@_register("FLOOR", min_args=1, max_args=2)
def _floor(ctx, value, significance=1.0):
    number, step = to_number(value), to_number(significance)
    if step == 0:
        raise ErrorSignal(ExcelError("#DIV/0!"))
    return math.floor(number / step) * step


@_register("CEILING", min_args=1, max_args=2)
def _ceiling(ctx, value, significance=1.0):
    number, step = to_number(value), to_number(significance)
    if step == 0:
        return 0.0
    return math.ceil(number / step) * step


@_register("SUMPRODUCT", min_args=1)
def _sumproduct(ctx, *ranges):
    columns = []
    for rng in ranges:
        if isinstance(rng, RangeValue):
            values = [v for _, _, v in rng.iter_all_positions()]
        else:
            values = [rng]
        columns.append(values)
    length = len(columns[0])
    if any(len(col) != length for col in columns):
        raise ErrorSignal(VALUE_ERROR)
    total = 0.0
    for i in range(length):
        product = 1.0
        for col in columns:
            value = col[i]
            if isinstance(value, ExcelError):
                raise ErrorSignal(value)
            product *= (
                float(value)
                if isinstance(value, (int, float)) and not isinstance(value, bool)
                else 0.0
            )
        total += product
    return total


# ---------------------------------------------------------------------------
# conditional aggregates


@_register("SUMIF", min_args=2, max_args=3)
def _sumif(ctx, criteria_range, criterion, sum_range=None):
    if not isinstance(criteria_range, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    predicate = parse_criteria(criterion)
    target = sum_range if isinstance(sum_range, RangeValue) else criteria_range
    total = 0.0
    for r, c, value in criteria_range.iter_all_positions():
        if predicate(value):
            candidate = target.get(r, c) if (r < target.height and c < target.width) else None
            if isinstance(candidate, ExcelError):
                raise ErrorSignal(candidate)
            if isinstance(candidate, (int, float)) and not isinstance(candidate, bool):
                total += float(candidate)
    return total


@_register("COUNTIF", min_args=2, max_args=2)
def _countif(ctx, criteria_range, criterion):
    if not isinstance(criteria_range, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    predicate = parse_criteria(criterion)
    return float(sum(1 for _, _, v in criteria_range.iter_all_positions() if predicate(v)))


@_register("AVERAGEIF", min_args=2, max_args=3)
def _averageif(ctx, criteria_range, criterion, avg_range=None):
    if not isinstance(criteria_range, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    predicate = parse_criteria(criterion)
    target = avg_range if isinstance(avg_range, RangeValue) else criteria_range
    numbers = []
    for r, c, value in criteria_range.iter_all_positions():
        if predicate(value):
            candidate = target.get(r, c) if (r < target.height and c < target.width) else None
            if isinstance(candidate, (int, float)) and not isinstance(candidate, bool):
                numbers.append(float(candidate))
    return safe_divide(math.fsum(numbers), len(numbers))


def _ifs_matches(pairs: list, target: "RangeValue | None" = None) -> list[tuple[int, int]]:
    """Offsets matching every (range, criterion) pair of an *IFS call.

    When a ``target`` (sum/average/min/max range) is given, its shape
    must match the criteria ranges, per Excel.
    """
    if not pairs:
        raise ErrorSignal(VALUE_ERROR)
    first = pairs[0][0]
    if not isinstance(first, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    if target is not None and (
        target.width != first.width or target.height != first.height
    ):
        raise ErrorSignal(VALUE_ERROR)
    predicates = []
    for rng, criterion in pairs:
        if not isinstance(rng, RangeValue):
            raise ErrorSignal(VALUE_ERROR)
        if rng.width != first.width or rng.height != first.height:
            raise ErrorSignal(VALUE_ERROR)
        predicates.append((rng, parse_criteria(criterion)))
    out: list[tuple[int, int]] = []
    for r in range(first.height):
        for c in range(first.width):
            if all(predicate(rng.get(r, c)) for rng, predicate in predicates):
                out.append((r, c))
    return out


def _pairs_of(args: tuple) -> list:
    if len(args) % 2:
        raise ErrorSignal(VALUE_ERROR)
    return [(args[i], args[i + 1]) for i in range(0, len(args), 2)]


@_register("SUMIFS", min_args=3)
def _sumifs(ctx, sum_range, *criteria):
    if not isinstance(sum_range, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    total = 0.0
    for r, c in _ifs_matches(_pairs_of(criteria), sum_range):
        value = sum_range.get(r, c)
        if isinstance(value, ExcelError):
            raise ErrorSignal(value)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            total += float(value)
    return total


@_register("COUNTIFS", min_args=2)
def _countifs(ctx, *criteria):
    return float(len(_ifs_matches(_pairs_of(criteria))))


@_register("AVERAGEIFS", min_args=3)
def _averageifs(ctx, avg_range, *criteria):
    if not isinstance(avg_range, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    numbers = []
    for r, c in _ifs_matches(_pairs_of(criteria), avg_range):
        value = avg_range.get(r, c)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            numbers.append(float(value))
    return safe_divide(math.fsum(numbers), len(numbers))


@_register("MAXIFS", min_args=3)
def _maxifs(ctx, max_range, *criteria):
    values = _ifs_numbers(max_range, criteria)
    return max(values) if values else 0.0


@_register("MINIFS", min_args=3)
def _minifs(ctx, min_range, *criteria):
    values = _ifs_numbers(min_range, criteria)
    return min(values) if values else 0.0


def _ifs_numbers(target, criteria) -> list[float]:
    if not isinstance(target, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    out = []
    for r, c in _ifs_matches(_pairs_of(criteria), target):
        value = target.get(r, c)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out.append(float(value))
    return out


@_register("RANK", min_args=2, max_args=3)
def _rank(ctx, value, rng, descending_is_zero=0.0):
    if not isinstance(rng, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    target = to_number(value)
    numbers = sorted(rng.iter_numbers(), reverse=not to_number(descending_is_zero))
    for i, number in enumerate(numbers, start=1):
        if number == target:
            return float(i)
    raise ErrorSignal(NA_ERROR)


@_register("PERCENTILE", min_args=2, max_args=2)
def _percentile(ctx, rng, q):
    if not isinstance(rng, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    fraction = to_number(q)
    if not 0.0 <= fraction <= 1.0:
        raise ErrorSignal(NUM_ERROR)
    numbers = sorted(rng.iter_numbers())
    if not numbers:
        raise ErrorSignal(NUM_ERROR)
    if len(numbers) == 1:
        return numbers[0]
    rank = fraction * (len(numbers) - 1)
    low = int(rank)
    high = min(low + 1, len(numbers) - 1)
    return numbers[low] + (numbers[high] - numbers[low]) * (rank - low)


@_register("TRUNC", min_args=1, max_args=2)
def _trunc(ctx, value, digits=0.0):
    number, nd = to_number(value), int(to_number(digits))
    scale = 10.0 ** nd
    return math.trunc(number * scale) / scale


@_register("EVEN", min_args=1, max_args=1)
def _even(ctx, value):
    number = to_number(value)
    rounded = math.ceil(abs(number) / 2.0) * 2.0
    return rounded if number >= 0 else -rounded


@_register("ODD", min_args=1, max_args=1)
def _odd(ctx, value):
    number = to_number(value)
    magnitude = abs(number)
    rounded = math.ceil((magnitude + 1.0) / 2.0) * 2.0 - 1.0
    return rounded if number >= 0 else -rounded


# ---------------------------------------------------------------------------
# logical (lazy, to short-circuit and tolerate errors)


@_register("IF", lazy=True, min_args=2, max_args=3)
def _if(ctx, nodes):
    condition = to_bool(ctx.eval(nodes[0]))
    if condition:
        return ctx.eval(nodes[1])
    if len(nodes) >= 3:
        return ctx.eval(nodes[2])
    return False


@_register("AND", lazy=True, min_args=1)
def _and(ctx, nodes):
    for node in nodes:
        if not _truthy_for_logical(ctx.eval(node)):
            return False
    return True


@_register("OR", lazy=True, min_args=1)
def _or(ctx, nodes):
    for node in nodes:
        if _truthy_for_logical(ctx.eval(node)):
            return True
    return False


def _truthy_for_logical(value) -> bool:
    if isinstance(value, RangeValue):
        return any(to_bool(v) for v in value.iter_nonblank())
    return to_bool(value)


@_register("XOR", lazy=True, min_args=1)
def _xor(ctx, nodes):
    count = sum(1 for node in nodes if _truthy_for_logical(ctx.eval(node)))
    return count % 2 == 1


@_register("NOT", min_args=1, max_args=1)
def _not(ctx, value):
    return not to_bool(value)


@_register("IFERROR", lazy=True, min_args=2, max_args=2)
def _iferror(ctx, nodes):
    try:
        value = ctx.eval(nodes[0])
    except ErrorSignal:
        return ctx.eval(nodes[1])
    if isinstance(value, ExcelError):
        return ctx.eval(nodes[1])
    return value


@_register("ISERROR", lazy=True, min_args=1, max_args=1)
def _iserror(ctx, nodes):
    try:
        value = ctx.eval(nodes[0])
    except ErrorSignal:
        return True
    return isinstance(value, ExcelError)


@_register("ISBLANK", min_args=1, max_args=1)
def _isblank(ctx, value):
    if isinstance(value, RangeValue):
        value = value.get(0, 0) if value.width == value.height == 1 else None
    return value is None


@_register("ISNUMBER", min_args=1, max_args=1)
def _isnumber(ctx, value):
    if isinstance(value, RangeValue):
        value = value.get(0, 0) if value.width == value.height == 1 else None
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@_register("ISTEXT", min_args=1, max_args=1)
def _istext(ctx, value):
    if isinstance(value, RangeValue):
        value = value.get(0, 0) if value.width == value.height == 1 else None
    return isinstance(value, str)


# ---------------------------------------------------------------------------
# text


@_register("CONCATENATE", min_args=1)
def _concatenate(ctx, *values):
    return "".join(to_text(v) for v in values)


_alias("CONCAT", "CONCATENATE")


@_register("LEN", min_args=1, max_args=1)
def _len(ctx, value):
    return float(len(to_text(value)))


@_register("LEFT", min_args=1, max_args=2)
def _left(ctx, value, count=1.0):
    n = int(to_number(count))
    if n < 0:
        raise ErrorSignal(VALUE_ERROR)
    return to_text(value)[:n]


@_register("RIGHT", min_args=1, max_args=2)
def _right(ctx, value, count=1.0):
    n = int(to_number(count))
    if n < 0:
        raise ErrorSignal(VALUE_ERROR)
    return to_text(value)[-n:] if n else ""


@_register("MID", min_args=3, max_args=3)
def _mid(ctx, value, start, count):
    start_i, count_i = int(to_number(start)), int(to_number(count))
    if start_i < 1 or count_i < 0:
        raise ErrorSignal(VALUE_ERROR)
    return to_text(value)[start_i - 1 : start_i - 1 + count_i]


@_register("UPPER", min_args=1, max_args=1)
def _upper(ctx, value):
    return to_text(value).upper()


@_register("LOWER", min_args=1, max_args=1)
def _lower(ctx, value):
    return to_text(value).lower()


@_register("TRIM", min_args=1, max_args=1)
def _trim(ctx, value):
    return " ".join(to_text(value).split())


@_register("REPT", min_args=2, max_args=2)
def _rept(ctx, value, count):
    n = int(to_number(count))
    if n < 0:
        raise ErrorSignal(VALUE_ERROR)
    return to_text(value) * n


@_register("FIND", min_args=2, max_args=3)
def _find(ctx, needle, haystack, start=1.0):
    start_i = int(to_number(start))
    if start_i < 1:
        raise ErrorSignal(VALUE_ERROR)
    index = to_text(haystack).find(to_text(needle), start_i - 1)
    if index < 0:
        raise ErrorSignal(VALUE_ERROR)
    return float(index + 1)


@_register("SUBSTITUTE", min_args=3, max_args=4)
def _substitute(ctx, value, old, new, instance=None):
    text, old_text, new_text = to_text(value), to_text(old), to_text(new)
    if instance is None:
        return text.replace(old_text, new_text)
    nth = int(to_number(instance))
    if nth < 1:
        raise ErrorSignal(VALUE_ERROR)
    index = -1
    for _ in range(nth):
        index = text.find(old_text, index + 1)
        if index < 0:
            return text
    return text[:index] + new_text + text[index + len(old_text):]


@_register("VALUE", min_args=1, max_args=1)
def _value(ctx, value):
    return to_number(value)


@_register("TEXT", min_args=1, max_args=2)
def _text(ctx, value, fmt=None):
    # Minimal TEXT: we support the "0"/"0.00"-style fixed-decimal formats.
    number = to_number(value)
    if fmt is None:
        return to_text(number)
    fmt_text = to_text(fmt)
    if "." in fmt_text:
        decimals = len(fmt_text.split(".", 1)[1].replace('"', ""))
        return f"{number:.{decimals}f}"
    return str(int(round(number)))


# ---------------------------------------------------------------------------
# lookup and reference
#
# The linear scans below are the semantics-defining reference for every
# lookup builtin.  The engine may attach a lookaside-index probe to the
# resolver (``repro.engine.lookup``); when a vector qualifies, the probe
# answers the same (side, tie) query from a hash map or sorted index and
# MUST be bit-identical to the scan on arbitrary — unsorted, mixed-type,
# holey — data.  That is only possible because matching is class-filtered:
# an entry can match only a needle of its own type class, so approximate
# mode is "best entry of the needle's class under <=/>=", never a global
# ordering over mixed types (which Excel does not use either).

#: Lookup type classes: entries match needles of the same class only.
_CLS_NUM, _CLS_TEXT, _CLS_BOOL = 0, 1, 2


def lookup_entry_key(value):
    """``value -> (cls, norm)`` for an indexable vector entry.

    None means the entry can never match: blanks, errors, NaN and exotic
    objects are transparent to every lookup mode.  Text normalises to
    casefolded-by-``lower`` form (Excel compares case-insensitively).
    """
    if value is None or isinstance(value, ExcelError):
        return None
    if value is True or value is False:
        return (_CLS_BOOL, value)
    if isinstance(value, (int, float)):
        value = float(value)
        return None if value != value else (_CLS_NUM, value)
    if isinstance(value, str):
        return (_CLS_TEXT, value.lower())
    return None


def lookup_needle_key(needle):
    """Like :func:`lookup_entry_key` for the sought value.

    A blank needle coerces to numeric zero (Excel's behaviour for an
    empty lookup_value); a 1x1 range collapses by implicit intersection;
    a multi-cell range or error needle can never match (the callers'
    legacy #N/A behaviour).
    """
    if isinstance(needle, RangeValue):
        if needle.width == 1 and needle.height == 1:
            needle = needle.get(0, 0)
        else:
            return None
    if needle is None:
        return (_CLS_NUM, 0.0)
    return lookup_entry_key(needle)


def _scan_vector(values, key, *, side: str, tie: str) -> int | None:
    """Reference linear scan: offset of the winning entry, or None.

    ``side`` selects the candidate set among same-class entries —
    ``"eq"`` equal to the needle, ``"le"`` the largest entry <= needle,
    ``"ge"`` the smallest entry >= needle.  ``tie`` picks which offset
    wins among equal candidate *values* ("first"/"last").  Index probes
    implement exactly this contract (see ``repro.engine.lookup``).
    """
    cls, norm = key
    best = None
    best_norm = None
    for i, value in enumerate(values):
        entry = lookup_entry_key(value)
        if entry is None or entry[0] != cls:
            continue
        e = entry[1]
        if side == "eq":
            if e == norm:
                if tie == "first":
                    return i
                best = i
        elif side == "le":
            if e <= norm and (
                best is None or e > best_norm or (e == best_norm and tie == "last")
            ):
                best, best_norm = i, e
        else:  # "ge"
            if e >= norm and (
                best is None or e < best_norm or (e == best_norm and tie == "last")
            ):
                best, best_norm = i, e
    return best


def _lookup_scan(values, needle, approximate: bool) -> int | None:
    """Legacy entry point kept as the compact reference: VLOOKUP-style
    exact (first equal entry) or approximate (largest entry <= needle,
    last occurrence on ties) matching."""
    key = lookup_needle_key(needle)
    if key is None:
        return None
    if approximate:
        return _scan_vector(values, key, side="le", tie="last")
    return _scan_vector(values, key, side="eq", tie="first")


def _lookup_offset(rv, bounds, values_factory, needle, *, side, tie):
    """Resolve one (side, tie) lookup over a 1-D vector of ``rv``.

    Consults the engine's lookaside probe when the resolver carries one
    (``bounds`` is the vector's (c1, r1, c2, r2)); otherwise runs the
    reference scan over ``values_factory()``.
    """
    key = lookup_needle_key(needle)
    if key is None:
        return None
    probe = getattr(rv._resolver, "lookup_probe", None)
    if probe is not None:
        index = probe(rv.sheet, *bounds)
        if index is not None:
            return index.find(key, side, tie)
    return _scan_vector(values_factory(), key, side=side, tie=tie)


def _first_column(rv):
    r = rv.range
    return (r.c1, r.r1, r.c1, r.r2), lambda: rv.column_values(0)


def _first_row(rv):
    r = rv.range
    return (r.c1, r.r1, r.c2, r.r1), lambda: rv.row_values(0)


@_register("VLOOKUP", min_args=3, max_args=4)
def _vlookup(ctx, needle, table, col_index, approximate=True):
    if not isinstance(table, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    col = int(to_number(col_index))
    if col < 1 or col > table.width:
        raise ErrorSignal(VALUE_ERROR)
    approx = to_bool(approximate) if not isinstance(approximate, bool) else approximate
    bounds, factory = _first_column(table)
    match_row = _lookup_offset(
        table, bounds, factory, needle,
        side="le" if approx else "eq", tie="last" if approx else "first",
    )
    if match_row is None:
        raise ErrorSignal(NA_ERROR)
    return table.get(match_row, col - 1)


@_register("HLOOKUP", min_args=3, max_args=4)
def _hlookup(ctx, needle, table, row_index, approximate=True):
    if not isinstance(table, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    row = int(to_number(row_index))
    if row < 1 or row > table.height:
        raise ErrorSignal(VALUE_ERROR)
    approx = to_bool(approximate) if not isinstance(approximate, bool) else approximate
    bounds, factory = _first_row(table)
    match_col = _lookup_offset(
        table, bounds, factory, needle,
        side="le" if approx else "eq", tie="last" if approx else "first",
    )
    if match_col is None:
        raise ErrorSignal(NA_ERROR)
    return table.get(row - 1, match_col)


@_register("MATCH", min_args=2, max_args=3)
def _match(ctx, needle, rng, match_type=1.0):
    if not isinstance(rng, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    if rng.width != 1 and rng.height != 1:
        raise ErrorSignal(NA_ERROR)
    mode = int(to_number(match_type))
    if mode == 0:
        side, tie = "eq", "first"
    elif mode > 0:
        side, tie = "le", "last"
    else:  # descending order: smallest entry >= needle, last occurrence
        side, tie = "ge", "last"
    bounds, factory = _first_column(rng) if rng.width == 1 else _first_row(rng)
    index = _lookup_offset(rng, bounds, factory, needle, side=side, tie=tie)
    if index is None:
        raise ErrorSignal(NA_ERROR)
    return float(index + 1)


def _excel_pattern(text: str) -> str:
    """Translate an Excel wildcard pattern to :mod:`fnmatch` syntax:
    ``~*``/``~?``/``~~`` are literals, ``[`` has no special meaning."""
    out = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "~" and i + 1 < len(text) and text[i + 1] in "*?~":
            out.append("[" + text[i + 1] + "]")
            i += 2
            continue
        out.append("[[]" if ch == "[" else ch)
        i += 1
    return "".join(out)


def _wildcard_scan(values, needle, tie: str) -> int | None:
    """XLOOKUP match_mode 2: wildcard match over text entries only."""
    if not isinstance(needle, str):
        key = lookup_needle_key(needle)
        if key is None:
            return None
        return _scan_vector(values, key, side="eq", tie=tie)
    pattern = _excel_pattern(needle.lower())
    best = None
    for i, value in enumerate(values):
        if isinstance(value, str) and fnmatch.fnmatchcase(value.lower(), pattern):
            if tie == "first":
                return i
            best = i
    return best


@_register("XLOOKUP", min_args=3, max_args=6)
def _xlookup(ctx, needle, lookup_rng, return_rng, if_not_found=None,
             match_mode=0.0, search_mode=1.0):
    if not isinstance(lookup_rng, RangeValue) or not isinstance(return_rng, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    if lookup_rng.width != 1 and lookup_rng.height != 1:
        raise ErrorSignal(VALUE_ERROR)
    vertical = lookup_rng.width == 1
    length = lookup_rng.height if vertical else lookup_rng.width
    if vertical:
        if return_rng.height != length or return_rng.width != 1:
            raise ErrorSignal(VALUE_ERROR)
    elif return_rng.width != length or return_rng.height != 1:
        raise ErrorSignal(VALUE_ERROR)
    mode = int(to_number(match_mode))
    order = int(to_number(search_mode))
    if mode not in (-1, 0, 1, 2) or order not in (-2, -1, 1, 2):
        raise ErrorSignal(VALUE_ERROR)
    # Binary search modes (2/-2) assume pre-sorted data; the index makes
    # them free, so they share the linear modes' exact semantics here.
    tie = "last" if order < 0 else "first"
    bounds, factory = _first_column(lookup_rng) if vertical else _first_row(lookup_rng)
    if mode == 2:
        offset = _wildcard_scan(factory(), needle, tie)
    else:
        side = "eq" if mode == 0 else ("le" if mode < 0 else "ge")
        offset = _lookup_offset(lookup_rng, bounds, factory, needle, side=side, tie=tie)
    if offset is None:
        if if_not_found is not None:
            return if_not_found
        raise ErrorSignal(NA_ERROR)
    return return_rng.get(offset, 0) if vertical else return_rng.get(0, offset)


@_register("INDEX", min_args=2, max_args=3)
def _index(ctx, rng, row, col=None):
    if not isinstance(rng, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    row_i = int(to_number(row))
    if row_i < 0:
        raise ErrorSignal(VALUE_ERROR)
    if col is None:
        if rng.width != 1 and rng.height != 1:
            raise ErrorSignal(VALUE_ERROR)
        if row_i == 0:
            return rng
        if rng.width == 1:
            return rng.get(row_i - 1, 0)
        return rng.get(0, row_i - 1)
    col_i = int(to_number(col))
    if col_i < 0:
        raise ErrorSignal(VALUE_ERROR)
    if row_i == 0 or col_i == 0:
        if row_i > rng.height or col_i > rng.width:
            raise ErrorSignal(REF_ERROR)
        r = rng.range
        if row_i == 0 and col_i == 0:
            return rng
        if row_i == 0:
            c = r.c1 + col_i - 1
            sub = Range(c, r.r1, c, r.r2)
        else:
            rr = r.r1 + row_i - 1
            sub = Range(r.c1, rr, r.c2, rr)
        return RangeValue(sub, rng.sheet, rng._resolver)
    return rng.get(row_i - 1, col_i - 1)


@_register("ROW", lazy=True, max_args=1)
def _row(ctx, nodes):
    if nodes:
        rng = ctx.eval_reference(nodes[0])
        return float(rng.r1)
    return float(ctx.row)


@_register("COLUMN", lazy=True, max_args=1)
def _column(ctx, nodes):
    if nodes:
        rng = ctx.eval_reference(nodes[0])
        return float(rng.c1)
    return float(ctx.col)


@_register("ROWS", lazy=True, min_args=1, max_args=1)
def _rows(ctx, nodes):
    return float(ctx.eval_reference(nodes[0]).height)


@_register("COLUMNS", lazy=True, min_args=1, max_args=1)
def _columns(ctx, nodes):
    return float(ctx.eval_reference(nodes[0]).width)
