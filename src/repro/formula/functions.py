"""Builtin spreadsheet function library.

Covers the functions that appear in the paper's motivating workloads
(SUM/IF/VLOOKUP-style sheets) plus the everyday math, text, logical,
statistical and lookup builtins needed to evaluate realistic spreadsheets.

Functions are registered in :data:`REGISTRY`.  Eager functions receive
pre-evaluated values (scalars or :class:`RangeValue`); *lazy* functions
(IF, AND, IFERROR, ...) receive the evaluation context and unevaluated AST
nodes so they can short-circuit and tolerate errors.
"""

from __future__ import annotations

import fnmatch
import math
from typing import Callable, NamedTuple

from .errors import NA_ERROR, NUM_ERROR, VALUE_ERROR, ExcelError
from .numeric import fsum_count
from .values import (
    ErrorSignal,
    RangeValue,
    compare_values,
    safe_divide,
    to_bool,
    to_number,
    to_text,
)

__all__ = ["REGISTRY", "FunctionSpec", "parse_criteria"]


class FunctionSpec(NamedTuple):
    name: str
    impl: Callable
    lazy: bool = False
    min_args: int = 0
    max_args: int | None = None


REGISTRY: dict[str, FunctionSpec] = {}


def _register(name: str, *, lazy: bool = False, min_args: int = 0, max_args: int | None = None):
    def decorator(fn: Callable) -> Callable:
        REGISTRY[name] = FunctionSpec(name, fn, lazy, min_args, max_args)
        return fn

    return decorator


def _alias(name: str, target: str) -> None:
    spec = REGISTRY[target]
    REGISTRY[name] = spec._replace(name=name)


# ---------------------------------------------------------------------------
# helpers


def _iter_numbers(values):
    """Numbers from a mixed argument list, lazily.

    Direct scalar arguments are coerced (so ``SUM("3")`` works); range
    arguments contribute only their numeric cells, per Excel.  This is
    the non-materialising path: single-pass aggregates (SUM/AVERAGE/
    MIN/MAX/PRODUCT) consume it without ever building the full list —
    on a 100k-cell range that is the difference between O(1) and O(n)
    transient allocation (see ``benchmarks/bench_micro_aggregates.py``).
    """
    for value in values:
        if isinstance(value, RangeValue):
            yield from value.iter_numbers()
        elif value is None:
            continue
        else:
            yield to_number(value)


def _flatten_numbers(values) -> list[float]:
    """Materialised form of :func:`_iter_numbers`, for the aggregates
    that genuinely need every element at once (MEDIAN, STDEV, ...)."""
    return list(_iter_numbers(values))


def _flatten_all(values) -> list[object]:
    out: list[object] = []
    for value in values:
        if isinstance(value, RangeValue):
            out.extend(value.iter_nonblank())
        else:
            out.append(value)
    return out


def parse_criteria(criterion) -> Callable[[object], bool]:
    """Compile a SUMIF/COUNTIF criterion into a predicate.

    Supports the comparison-prefixed forms (``">=5"``, ``"<>x"``), numeric
    equality, and text equality with ``*``/``?`` wildcards.
    """
    if isinstance(criterion, RangeValue):
        criterion = criterion.get(0, 0) if criterion.width == criterion.height == 1 else None
    if isinstance(criterion, str):
        text = criterion
        for op in ("<>", "<=", ">=", "=", "<", ">"):
            if text.startswith(op):
                body = text[len(op):]
                try:
                    target: object = float(body)
                    numeric = True
                except ValueError:
                    target = body
                    numeric = False

                def predicate(value, op=op, target=target, numeric=numeric):
                    if value is None:
                        return False
                    if numeric and not isinstance(value, (int, float)):
                        return op == "<>"
                    if not numeric and not isinstance(value, str):
                        return op == "<>"
                    try:
                        cmp = compare_values(value, target)
                    except ErrorSignal:
                        return False
                    return {
                        "=": cmp == 0, "<>": cmp != 0,
                        "<": cmp < 0, "<=": cmp <= 0,
                        ">": cmp > 0, ">=": cmp >= 0,
                    }[op]

                return predicate
        if "*" in text or "?" in text:
            pattern = text.lower()
            return lambda value: isinstance(value, str) and fnmatch.fnmatchcase(
                value.lower(), pattern
            )
        try:
            target_num = float(text)
            return lambda value: isinstance(value, (int, float)) and not isinstance(
                value, bool
            ) and float(value) == target_num
        except ValueError:
            return lambda value: isinstance(value, str) and value.lower() == text.lower()
    if isinstance(criterion, bool):
        return lambda value: isinstance(value, bool) and value == criterion
    if isinstance(criterion, (int, float)):
        target_num = float(criterion)
        return lambda value: isinstance(value, (int, float)) and not isinstance(
            value, bool
        ) and float(value) == target_num
    if criterion is None:
        return lambda value: value is None
    raise ErrorSignal(VALUE_ERROR)


# ---------------------------------------------------------------------------
# math and aggregates


@_register("SUM")
def _sum(ctx, *values):
    return math.fsum(_iter_numbers(values))


@_register("PRODUCT")
def _product(ctx, *values):
    out = 1.0
    for number in _iter_numbers(values):
        out *= number
    return out


@_register("AVERAGE", min_args=1)
def _average(ctx, *values):
    # One non-materialising pass; fsum_count is bit-identical to
    # fsum-over-a-list, so this matches the historical behaviour exactly.
    total, count = fsum_count(_iter_numbers(values))
    return safe_divide(total, count)


_alias("AVG", "AVERAGE")


@_register("MIN")
def _min(ctx, *values):
    return min(_iter_numbers(values), default=0.0)


@_register("MAX")
def _max(ctx, *values):
    return max(_iter_numbers(values), default=0.0)


@_register("COUNT")
def _count(ctx, *values):
    total = 0
    for value in values:
        if isinstance(value, RangeValue):
            total += sum(1 for _ in value.iter_numbers())
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            total += 1
    return float(total)


@_register("COUNTA")
def _counta(ctx, *values):
    return float(sum(1 for v in _flatten_all(values) if v is not None))


@_register("COUNTBLANK", min_args=1, max_args=1)
def _countblank(ctx, rng):
    if not isinstance(rng, RangeValue):
        return 0.0 if rng is not None else 1.0
    occupied = sum(1 for v in rng.iter_nonblank() if v is not None)
    return float(rng.range.size - occupied)


@_register("MEDIAN", min_args=1)
def _median(ctx, *values):
    numbers = sorted(_flatten_numbers(values))
    if not numbers:
        raise ErrorSignal(NUM_ERROR)
    mid = len(numbers) // 2
    if len(numbers) % 2:
        return numbers[mid]
    return (numbers[mid - 1] + numbers[mid]) / 2.0


@_register("STDEV", min_args=1)
def _stdev(ctx, *values):
    numbers = _flatten_numbers(values)
    if len(numbers) < 2:
        raise ErrorSignal(ExcelError("#DIV/0!"))
    mean = math.fsum(numbers) / len(numbers)
    return math.sqrt(math.fsum((x - mean) ** 2 for x in numbers) / (len(numbers) - 1))


@_register("VAR", min_args=1)
def _var(ctx, *values):
    numbers = _flatten_numbers(values)
    if len(numbers) < 2:
        raise ErrorSignal(ExcelError("#DIV/0!"))
    mean = math.fsum(numbers) / len(numbers)
    return math.fsum((x - mean) ** 2 for x in numbers) / (len(numbers) - 1)


@_register("SMALL", min_args=2, max_args=2)
def _small(ctx, values, k):
    numbers = sorted(_flatten_numbers([values]))
    index = int(to_number(k))
    if index < 1 or index > len(numbers):
        raise ErrorSignal(NUM_ERROR)
    return numbers[index - 1]


@_register("LARGE", min_args=2, max_args=2)
def _large(ctx, values, k):
    numbers = sorted(_flatten_numbers([values]), reverse=True)
    index = int(to_number(k))
    if index < 1 or index > len(numbers):
        raise ErrorSignal(NUM_ERROR)
    return numbers[index - 1]


@_register("ABS", min_args=1, max_args=1)
def _abs(ctx, value):
    return abs(to_number(value))


@_register("SIGN", min_args=1, max_args=1)
def _sign(ctx, value):
    number = to_number(value)
    return float((number > 0) - (number < 0))


@_register("INT", min_args=1, max_args=1)
def _int(ctx, value):
    return float(math.floor(to_number(value)))


@_register("ROUND", min_args=1, max_args=2)
def _round(ctx, value, digits=0.0):
    number, nd = to_number(value), int(to_number(digits))
    scale = 10.0 ** nd
    # Excel rounds half away from zero, not banker's rounding.
    return math.floor(abs(number) * scale + 0.5) / scale * (1 if number >= 0 else -1)


@_register("ROUNDUP", min_args=1, max_args=2)
def _roundup(ctx, value, digits=0.0):
    number, nd = to_number(value), int(to_number(digits))
    scale = 10.0 ** nd
    return math.ceil(abs(number) * scale - 1e-12) / scale * (1 if number >= 0 else -1)


@_register("ROUNDDOWN", min_args=1, max_args=2)
def _rounddown(ctx, value, digits=0.0):
    number, nd = to_number(value), int(to_number(digits))
    scale = 10.0 ** nd
    return math.floor(abs(number) * scale + 1e-12) / scale * (1 if number >= 0 else -1)


@_register("SQRT", min_args=1, max_args=1)
def _sqrt(ctx, value):
    number = to_number(value)
    if number < 0:
        raise ErrorSignal(NUM_ERROR)
    return math.sqrt(number)


@_register("POWER", min_args=2, max_args=2)
def _power(ctx, base, exponent):
    try:
        result = to_number(base) ** to_number(exponent)
    except (OverflowError, ZeroDivisionError, ValueError):
        raise ErrorSignal(NUM_ERROR) from None
    if isinstance(result, complex):
        raise ErrorSignal(NUM_ERROR)
    return float(result)


@_register("MOD", min_args=2, max_args=2)
def _mod(ctx, value, divisor):
    d = to_number(divisor)
    if d == 0:
        raise ErrorSignal(ExcelError("#DIV/0!"))
    return math.fmod(math.fmod(to_number(value), d) + d, d)


@_register("EXP", min_args=1, max_args=1)
def _exp(ctx, value):
    try:
        return math.exp(to_number(value))
    except OverflowError:
        raise ErrorSignal(NUM_ERROR) from None


@_register("LN", min_args=1, max_args=1)
def _ln(ctx, value):
    number = to_number(value)
    if number <= 0:
        raise ErrorSignal(NUM_ERROR)
    return math.log(number)


@_register("LOG", min_args=1, max_args=2)
def _log(ctx, value, base=10.0):
    number, b = to_number(value), to_number(base)
    if number <= 0 or b <= 0 or b == 1:
        raise ErrorSignal(NUM_ERROR)
    return math.log(number, b)


@_register("LOG10", min_args=1, max_args=1)
def _log10(ctx, value):
    number = to_number(value)
    if number <= 0:
        raise ErrorSignal(NUM_ERROR)
    return math.log10(number)


@_register("PI", max_args=0)
def _pi(ctx):
    return math.pi


@_register("FLOOR", min_args=1, max_args=2)
def _floor(ctx, value, significance=1.0):
    number, step = to_number(value), to_number(significance)
    if step == 0:
        raise ErrorSignal(ExcelError("#DIV/0!"))
    return math.floor(number / step) * step


@_register("CEILING", min_args=1, max_args=2)
def _ceiling(ctx, value, significance=1.0):
    number, step = to_number(value), to_number(significance)
    if step == 0:
        return 0.0
    return math.ceil(number / step) * step


@_register("SUMPRODUCT", min_args=1)
def _sumproduct(ctx, *ranges):
    columns = []
    for rng in ranges:
        if isinstance(rng, RangeValue):
            values = [v for _, _, v in rng.iter_all_positions()]
        else:
            values = [rng]
        columns.append(values)
    length = len(columns[0])
    if any(len(col) != length for col in columns):
        raise ErrorSignal(VALUE_ERROR)
    total = 0.0
    for i in range(length):
        product = 1.0
        for col in columns:
            value = col[i]
            if isinstance(value, ExcelError):
                raise ErrorSignal(value)
            product *= (
                float(value)
                if isinstance(value, (int, float)) and not isinstance(value, bool)
                else 0.0
            )
        total += product
    return total


# ---------------------------------------------------------------------------
# conditional aggregates


@_register("SUMIF", min_args=2, max_args=3)
def _sumif(ctx, criteria_range, criterion, sum_range=None):
    if not isinstance(criteria_range, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    predicate = parse_criteria(criterion)
    target = sum_range if isinstance(sum_range, RangeValue) else criteria_range
    total = 0.0
    for r, c, value in criteria_range.iter_all_positions():
        if predicate(value):
            candidate = target.get(r, c) if (r < target.height and c < target.width) else None
            if isinstance(candidate, ExcelError):
                raise ErrorSignal(candidate)
            if isinstance(candidate, (int, float)) and not isinstance(candidate, bool):
                total += float(candidate)
    return total


@_register("COUNTIF", min_args=2, max_args=2)
def _countif(ctx, criteria_range, criterion):
    if not isinstance(criteria_range, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    predicate = parse_criteria(criterion)
    return float(sum(1 for _, _, v in criteria_range.iter_all_positions() if predicate(v)))


@_register("AVERAGEIF", min_args=2, max_args=3)
def _averageif(ctx, criteria_range, criterion, avg_range=None):
    if not isinstance(criteria_range, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    predicate = parse_criteria(criterion)
    target = avg_range if isinstance(avg_range, RangeValue) else criteria_range
    numbers = []
    for r, c, value in criteria_range.iter_all_positions():
        if predicate(value):
            candidate = target.get(r, c) if (r < target.height and c < target.width) else None
            if isinstance(candidate, (int, float)) and not isinstance(candidate, bool):
                numbers.append(float(candidate))
    return safe_divide(math.fsum(numbers), len(numbers))


def _ifs_matches(pairs: list, target: "RangeValue | None" = None) -> list[tuple[int, int]]:
    """Offsets matching every (range, criterion) pair of an *IFS call.

    When a ``target`` (sum/average/min/max range) is given, its shape
    must match the criteria ranges, per Excel.
    """
    if not pairs:
        raise ErrorSignal(VALUE_ERROR)
    first = pairs[0][0]
    if not isinstance(first, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    if target is not None and (
        target.width != first.width or target.height != first.height
    ):
        raise ErrorSignal(VALUE_ERROR)
    predicates = []
    for rng, criterion in pairs:
        if not isinstance(rng, RangeValue):
            raise ErrorSignal(VALUE_ERROR)
        if rng.width != first.width or rng.height != first.height:
            raise ErrorSignal(VALUE_ERROR)
        predicates.append((rng, parse_criteria(criterion)))
    out: list[tuple[int, int]] = []
    for r in range(first.height):
        for c in range(first.width):
            if all(predicate(rng.get(r, c)) for rng, predicate in predicates):
                out.append((r, c))
    return out


def _pairs_of(args: tuple) -> list:
    if len(args) % 2:
        raise ErrorSignal(VALUE_ERROR)
    return [(args[i], args[i + 1]) for i in range(0, len(args), 2)]


@_register("SUMIFS", min_args=3)
def _sumifs(ctx, sum_range, *criteria):
    if not isinstance(sum_range, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    total = 0.0
    for r, c in _ifs_matches(_pairs_of(criteria), sum_range):
        value = sum_range.get(r, c)
        if isinstance(value, ExcelError):
            raise ErrorSignal(value)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            total += float(value)
    return total


@_register("COUNTIFS", min_args=2)
def _countifs(ctx, *criteria):
    return float(len(_ifs_matches(_pairs_of(criteria))))


@_register("AVERAGEIFS", min_args=3)
def _averageifs(ctx, avg_range, *criteria):
    if not isinstance(avg_range, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    numbers = []
    for r, c in _ifs_matches(_pairs_of(criteria), avg_range):
        value = avg_range.get(r, c)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            numbers.append(float(value))
    return safe_divide(math.fsum(numbers), len(numbers))


@_register("MAXIFS", min_args=3)
def _maxifs(ctx, max_range, *criteria):
    values = _ifs_numbers(max_range, criteria)
    return max(values) if values else 0.0


@_register("MINIFS", min_args=3)
def _minifs(ctx, min_range, *criteria):
    values = _ifs_numbers(min_range, criteria)
    return min(values) if values else 0.0


def _ifs_numbers(target, criteria) -> list[float]:
    if not isinstance(target, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    out = []
    for r, c in _ifs_matches(_pairs_of(criteria), target):
        value = target.get(r, c)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out.append(float(value))
    return out


@_register("RANK", min_args=2, max_args=3)
def _rank(ctx, value, rng, descending_is_zero=0.0):
    if not isinstance(rng, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    target = to_number(value)
    numbers = sorted(rng.iter_numbers(), reverse=not to_number(descending_is_zero))
    for i, number in enumerate(numbers, start=1):
        if number == target:
            return float(i)
    raise ErrorSignal(NA_ERROR)


@_register("PERCENTILE", min_args=2, max_args=2)
def _percentile(ctx, rng, q):
    if not isinstance(rng, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    fraction = to_number(q)
    if not 0.0 <= fraction <= 1.0:
        raise ErrorSignal(NUM_ERROR)
    numbers = sorted(rng.iter_numbers())
    if not numbers:
        raise ErrorSignal(NUM_ERROR)
    if len(numbers) == 1:
        return numbers[0]
    rank = fraction * (len(numbers) - 1)
    low = int(rank)
    high = min(low + 1, len(numbers) - 1)
    return numbers[low] + (numbers[high] - numbers[low]) * (rank - low)


@_register("TRUNC", min_args=1, max_args=2)
def _trunc(ctx, value, digits=0.0):
    number, nd = to_number(value), int(to_number(digits))
    scale = 10.0 ** nd
    return math.trunc(number * scale) / scale


@_register("EVEN", min_args=1, max_args=1)
def _even(ctx, value):
    number = to_number(value)
    rounded = math.ceil(abs(number) / 2.0) * 2.0
    return rounded if number >= 0 else -rounded


@_register("ODD", min_args=1, max_args=1)
def _odd(ctx, value):
    number = to_number(value)
    magnitude = abs(number)
    rounded = math.ceil((magnitude + 1.0) / 2.0) * 2.0 - 1.0
    return rounded if number >= 0 else -rounded


# ---------------------------------------------------------------------------
# logical (lazy, to short-circuit and tolerate errors)


@_register("IF", lazy=True, min_args=2, max_args=3)
def _if(ctx, nodes):
    condition = to_bool(ctx.eval(nodes[0]))
    if condition:
        return ctx.eval(nodes[1])
    if len(nodes) >= 3:
        return ctx.eval(nodes[2])
    return False


@_register("AND", lazy=True, min_args=1)
def _and(ctx, nodes):
    for node in nodes:
        if not _truthy_for_logical(ctx.eval(node)):
            return False
    return True


@_register("OR", lazy=True, min_args=1)
def _or(ctx, nodes):
    for node in nodes:
        if _truthy_for_logical(ctx.eval(node)):
            return True
    return False


def _truthy_for_logical(value) -> bool:
    if isinstance(value, RangeValue):
        return any(to_bool(v) for v in value.iter_nonblank())
    return to_bool(value)


@_register("XOR", lazy=True, min_args=1)
def _xor(ctx, nodes):
    count = sum(1 for node in nodes if _truthy_for_logical(ctx.eval(node)))
    return count % 2 == 1


@_register("NOT", min_args=1, max_args=1)
def _not(ctx, value):
    return not to_bool(value)


@_register("IFERROR", lazy=True, min_args=2, max_args=2)
def _iferror(ctx, nodes):
    try:
        value = ctx.eval(nodes[0])
    except ErrorSignal:
        return ctx.eval(nodes[1])
    if isinstance(value, ExcelError):
        return ctx.eval(nodes[1])
    return value


@_register("ISERROR", lazy=True, min_args=1, max_args=1)
def _iserror(ctx, nodes):
    try:
        value = ctx.eval(nodes[0])
    except ErrorSignal:
        return True
    return isinstance(value, ExcelError)


@_register("ISBLANK", min_args=1, max_args=1)
def _isblank(ctx, value):
    if isinstance(value, RangeValue):
        value = value.get(0, 0) if value.width == value.height == 1 else None
    return value is None


@_register("ISNUMBER", min_args=1, max_args=1)
def _isnumber(ctx, value):
    if isinstance(value, RangeValue):
        value = value.get(0, 0) if value.width == value.height == 1 else None
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@_register("ISTEXT", min_args=1, max_args=1)
def _istext(ctx, value):
    if isinstance(value, RangeValue):
        value = value.get(0, 0) if value.width == value.height == 1 else None
    return isinstance(value, str)


# ---------------------------------------------------------------------------
# text


@_register("CONCATENATE", min_args=1)
def _concatenate(ctx, *values):
    return "".join(to_text(v) for v in values)


_alias("CONCAT", "CONCATENATE")


@_register("LEN", min_args=1, max_args=1)
def _len(ctx, value):
    return float(len(to_text(value)))


@_register("LEFT", min_args=1, max_args=2)
def _left(ctx, value, count=1.0):
    n = int(to_number(count))
    if n < 0:
        raise ErrorSignal(VALUE_ERROR)
    return to_text(value)[:n]


@_register("RIGHT", min_args=1, max_args=2)
def _right(ctx, value, count=1.0):
    n = int(to_number(count))
    if n < 0:
        raise ErrorSignal(VALUE_ERROR)
    return to_text(value)[-n:] if n else ""


@_register("MID", min_args=3, max_args=3)
def _mid(ctx, value, start, count):
    start_i, count_i = int(to_number(start)), int(to_number(count))
    if start_i < 1 or count_i < 0:
        raise ErrorSignal(VALUE_ERROR)
    return to_text(value)[start_i - 1 : start_i - 1 + count_i]


@_register("UPPER", min_args=1, max_args=1)
def _upper(ctx, value):
    return to_text(value).upper()


@_register("LOWER", min_args=1, max_args=1)
def _lower(ctx, value):
    return to_text(value).lower()


@_register("TRIM", min_args=1, max_args=1)
def _trim(ctx, value):
    return " ".join(to_text(value).split())


@_register("REPT", min_args=2, max_args=2)
def _rept(ctx, value, count):
    n = int(to_number(count))
    if n < 0:
        raise ErrorSignal(VALUE_ERROR)
    return to_text(value) * n


@_register("FIND", min_args=2, max_args=3)
def _find(ctx, needle, haystack, start=1.0):
    start_i = int(to_number(start))
    if start_i < 1:
        raise ErrorSignal(VALUE_ERROR)
    index = to_text(haystack).find(to_text(needle), start_i - 1)
    if index < 0:
        raise ErrorSignal(VALUE_ERROR)
    return float(index + 1)


@_register("SUBSTITUTE", min_args=3, max_args=4)
def _substitute(ctx, value, old, new, instance=None):
    text, old_text, new_text = to_text(value), to_text(old), to_text(new)
    if instance is None:
        return text.replace(old_text, new_text)
    nth = int(to_number(instance))
    if nth < 1:
        raise ErrorSignal(VALUE_ERROR)
    index = -1
    for _ in range(nth):
        index = text.find(old_text, index + 1)
        if index < 0:
            return text
    return text[:index] + new_text + text[index + len(old_text):]


@_register("VALUE", min_args=1, max_args=1)
def _value(ctx, value):
    return to_number(value)


@_register("TEXT", min_args=1, max_args=2)
def _text(ctx, value, fmt=None):
    # Minimal TEXT: we support the "0"/"0.00"-style fixed-decimal formats.
    number = to_number(value)
    if fmt is None:
        return to_text(number)
    fmt_text = to_text(fmt)
    if "." in fmt_text:
        decimals = len(fmt_text.split(".", 1)[1].replace('"', ""))
        return f"{number:.{decimals}f}"
    return str(int(round(number)))


# ---------------------------------------------------------------------------
# lookup and reference


@_register("VLOOKUP", min_args=3, max_args=4)
def _vlookup(ctx, needle, table, col_index, approximate=True):
    if not isinstance(table, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    col = int(to_number(col_index))
    if col < 1 or col > table.width:
        raise ErrorSignal(VALUE_ERROR)
    approx = to_bool(approximate) if not isinstance(approximate, bool) else approximate
    match_row = _lookup_scan(list(table.column_values(0)), needle, approx)
    if match_row is None:
        raise ErrorSignal(NA_ERROR)
    return table.get(match_row, col - 1)


@_register("HLOOKUP", min_args=3, max_args=4)
def _hlookup(ctx, needle, table, row_index, approximate=True):
    if not isinstance(table, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    row = int(to_number(row_index))
    if row < 1 or row > table.height:
        raise ErrorSignal(VALUE_ERROR)
    approx = to_bool(approximate) if not isinstance(approximate, bool) else approximate
    match_col = _lookup_scan(list(table.row_values(0)), needle, approx)
    if match_col is None:
        raise ErrorSignal(NA_ERROR)
    return table.get(row - 1, match_col)


def _lookup_scan(values: list, needle, approximate: bool) -> int | None:
    """Index of the matching entry, or None.

    Exact mode scans linearly; approximate mode returns the last entry
    ``<= needle`` assuming ascending order, Excel-style.
    """
    if approximate:
        best = None
        for i, value in enumerate(values):
            if value is None:
                continue
            try:
                cmp = compare_values(value, needle)
            except ErrorSignal:
                continue
            if cmp <= 0:
                best = i
            else:
                break
        return best
    for i, value in enumerate(values):
        if value is None:
            continue
        try:
            if compare_values(value, needle) == 0:
                return i
        except ErrorSignal:
            continue
    return None


@_register("MATCH", min_args=2, max_args=3)
def _match(ctx, needle, rng, match_type=1.0):
    if not isinstance(rng, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    if rng.width != 1 and rng.height != 1:
        raise ErrorSignal(NA_ERROR)
    values = list(rng.column_values(0)) if rng.width == 1 else list(rng.row_values(0))
    mode = int(to_number(match_type))
    if mode == 0:
        index = _lookup_scan(values, needle, approximate=False)
    elif mode > 0:
        index = _lookup_scan(values, needle, approximate=True)
    else:  # descending order: last entry >= needle
        index = None
        for i, value in enumerate(values):
            if value is None:
                continue
            try:
                cmp = compare_values(value, needle)
            except ErrorSignal:
                continue
            if cmp >= 0:
                index = i
            else:
                break
    if index is None:
        raise ErrorSignal(NA_ERROR)
    return float(index + 1)


@_register("INDEX", min_args=2, max_args=3)
def _index(ctx, rng, row, col=None):
    if not isinstance(rng, RangeValue):
        raise ErrorSignal(VALUE_ERROR)
    row_i = int(to_number(row))
    if col is None:
        if rng.width == 1:
            return rng.get(row_i - 1, 0)
        if rng.height == 1:
            return rng.get(0, row_i - 1)
        raise ErrorSignal(VALUE_ERROR)
    col_i = int(to_number(col))
    return rng.get(row_i - 1, col_i - 1)


@_register("ROW", lazy=True, max_args=1)
def _row(ctx, nodes):
    if nodes:
        rng = ctx.eval_reference(nodes[0])
        return float(rng.r1)
    return float(ctx.row)


@_register("COLUMN", lazy=True, max_args=1)
def _column(ctx, nodes):
    if nodes:
        rng = ctx.eval_reference(nodes[0])
        return float(rng.c1)
    return float(ctx.col)


@_register("ROWS", lazy=True, min_args=1, max_args=1)
def _rows(ctx, nodes):
    return float(ctx.eval_reference(nodes[0]).height)


@_register("COLUMNS", lazy=True, min_args=1, max_args=1)
def _columns(ctx, nodes):
    return float(ctx.eval_reference(nodes[0]).width)
