"""Reference extraction: from formula AST to graph dependencies.

Each formula is parsed to the set of ranges it references (Sec. II-A); a
directed edge is then added from every referenced range to the formula
cell.  Alongside the plain geometry we keep the ``$`` fixedness of the
head and tail cells — the *dollar-sign cues* that TACO's heuristic edge
selection uses to guess which pattern a dependency follows if it was
produced by autofill (Sec. IV-A).
"""

from __future__ import annotations

from typing import NamedTuple

from ..grid.range import Range
from ..grid.ref import CellRef
from .ast_nodes import CellNode, Node, RangeNode, walk
from .parser import parse_formula

__all__ = ["ReferencedRange", "extract_references", "references_of_formula"]


class ReferencedRange(NamedTuple):
    """One range referenced by a formula, with its autofill cues."""

    range: Range
    head_fixed: bool
    tail_fixed: bool
    sheet: str | None = None

    @property
    def cue(self) -> str:
        """The pattern this reference would follow under autofill.

        ``$``-fixed head and tail -> FF; fixed head only -> FR; fixed tail
        only -> RF; no markers -> RR.  A cell axis counts as fixed only
        when both its column and row carry ``$`` (mixed references give no
        reliable cue and default to the relative interpretation).
        """
        if self.head_fixed and self.tail_fixed:
            return "FF"
        if self.head_fixed:
            return "FR"
        if self.tail_fixed:
            return "RF"
        return "RR"


def _is_fixed(ref: CellRef) -> bool:
    return ref.col_fixed and ref.row_fixed


def extract_references(ast: Node) -> list[ReferencedRange]:
    """All ranges referenced anywhere in the AST, deduplicated.

    Two references to the same (sheet, range) pair collapse into one
    dependency; if their cues disagree, the first occurrence wins, which
    matches reading the formula left to right.
    """
    out: list[ReferencedRange] = []
    seen: set[tuple[str | None, Range]] = set()
    for node in walk(ast):
        if isinstance(node, CellNode):
            rng = node.to_range()
            key = (node.sheet, rng)
            if key in seen:
                continue
            seen.add(key)
            fixed = _is_fixed(node.ref)
            out.append(ReferencedRange(rng, fixed, fixed, node.sheet))
        elif isinstance(node, RangeNode):
            rng = node.to_range()
            key = (node.sheet, rng)
            if key in seen:
                continue
            seen.add(key)
            out.append(
                ReferencedRange(rng, _is_fixed(node.head), _is_fixed(node.tail), node.sheet)
            )
    return out


def references_of_formula(text: str) -> list[ReferencedRange]:
    """Parse a formula string and extract its referenced ranges."""
    return extract_references(parse_formula(text))
