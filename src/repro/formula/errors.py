"""Spreadsheet error values and formula-language exceptions.

Spreadsheet errors (``#DIV/0!``, ``#REF!``, ...) are *values* that flow
through evaluation, not Python exceptions: a formula referencing an error
cell evaluates to that error.  :class:`ExcelError` models them as interned
singletons.  Parsing problems, by contrast, are real exceptions
(:class:`FormulaSyntaxError`).
"""

from __future__ import annotations

__all__ = [
    "ExcelError",
    "FormulaSyntaxError",
    "DIV0",
    "VALUE_ERROR",
    "REF_ERROR",
    "NAME_ERROR",
    "NA_ERROR",
    "NUM_ERROR",
    "NULL_ERROR",
    "CYCLE_ERROR",
    "ERROR_CODES",
]


class FormulaSyntaxError(ValueError):
    """Raised when a formula string cannot be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message if position < 0 else f"{message} (at position {position})")
        self.position = position


class ExcelError:
    """An interned spreadsheet error value such as ``#DIV/0!``."""

    __slots__ = ("code",)
    _interned: "dict[str, ExcelError]" = {}

    def __new__(cls, code: str) -> "ExcelError":
        existing = cls._interned.get(code)
        if existing is not None:
            return existing
        instance = super().__new__(cls)
        object.__setattr__(instance, "code", code)
        cls._interned[code] = instance
        return instance

    def __setattr__(self, name: str, value) -> None:  # pragma: no cover
        raise AttributeError("ExcelError is immutable")

    def __repr__(self) -> str:
        return f"ExcelError({self.code})"

    def __str__(self) -> str:
        return self.code

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ExcelError):
            return self.code == other.code
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.code)

    def __reduce__(self):
        # Slotted + custom __new__ breaks default pickling; reconstructing
        # through the constructor re-interns, so errors crossing process
        # boundaries (parallel recalc result columns) stay singletons.
        return (ExcelError, (self.code,))


DIV0 = ExcelError("#DIV/0!")
VALUE_ERROR = ExcelError("#VALUE!")
REF_ERROR = ExcelError("#REF!")
NAME_ERROR = ExcelError("#NAME?")
NA_ERROR = ExcelError("#N/A")
NUM_ERROR = ExcelError("#NUM!")
NULL_ERROR = ExcelError("#NULL!")
# Not an Excel-native code; DataSpread-style engines surface dependency
# cycles as a distinct error value, which our recalc engine reuses.
CYCLE_ERROR = ExcelError("#CYCLE!")

ERROR_CODES = (
    "#DIV/0!",
    "#VALUE!",
    "#REF!",
    "#NAME?",
    "#N/A",
    "#NUM!",
    "#NULL!",
    "#CYCLE!",
)
