"""Formula templates compiled once, evaluated per cell.

The paper's compression story is that autofill makes formulae *families*:
10,000 cells of a running-total column are one R1C1 template
(``SUM(R1C1:RC[-1])``) instantiated at 10,000 positions.  The
tree-walking :class:`~repro.formula.evaluator.Evaluator` re-discovers
that structure on every evaluation — an isinstance chain per AST node
per cell.  This module removes the repeated discovery:

* each formula is normalised to its R1C1 template key
  (:func:`~repro.formula.r1c1.to_r1c1`);
* the first time a key is seen, the template is *compiled* into a tree
  of specialised Python closures over ``(resolver, sheet, col, row)`` —
  cell references become precomputed column/row deltas, operators and
  function impls are bound once;
* every later cell with the same key (the other 9,999 rows) reuses the
  compiled closure from a bounded :class:`TemplateRegistry`.

Compilation is *transparent*: constructs the compiler does not cover —
uncommon lazy builtins, unknown function names — yield an unsupported
marker and the cell falls back to the tree-walking interpreter.  The
compiled closure calls the same coercions and the same function impls as
the interpreter, so results (values *and* error propagation) are
observationally identical; ``tests/engine/test_eval_differential.py``
pins this.

Templates whose whole body is one aggregate over one sliding/growing
range additionally expose a :class:`WindowSpec`, which is what lets the
recalculation engine evaluate a whole run of cells with rolling
aggregates (:mod:`repro.engine.vectorized`) instead of per-cell windows.
"""

from __future__ import annotations

from typing import Callable, NamedTuple

from ..grid.range import Range
from ..grid.ref import CellRef
from .ast_nodes import (
    BinaryOp,
    Boolean,
    CellNode,
    ErrorLiteral,
    FunctionCall,
    Node,
    Number,
    RangeNode,
    String,
    UnaryOp,
)
from .errors import REF_ERROR, VALUE_ERROR, ExcelError
from .evaluator import Evaluator
from .functions import REGISTRY, _truthy_for_logical
from .r1c1 import to_r1c1
from .values import (
    CellResolver,
    ErrorSignal,
    RangeValue,
    compare_values,
    safe_divide,
    to_bool,
    to_number,
    to_text,
)

__all__ = [
    "AxisRef",
    "CompiledTemplate",
    "CompilingEvaluator",
    "ElementwiseIR",
    "EvalStats",
    "TemplateRegistry",
    "WindowSpec",
    "compile_template",
    "default_registry",
    "elementwise_ir",
]

# A compiled sub-expression: (resolver, sheet, col, row) -> runtime value.
# Errors travel as ErrorSignal exactly as in the interpreter.
_Closure = Callable[[CellResolver, "str | None", int, int], object]


class _Unsupported(Exception):
    """Internal: the compiler does not cover this construct."""


class AxisRef(NamedTuple):
    """One axis of a template reference: absolute or host-relative.

    ``fixed`` axes carry the absolute coordinate in ``value``; relative
    axes carry the delta from the host cell.
    """

    fixed: bool
    value: int

    def at(self, host: int) -> int:
        """Resolve against a host coordinate."""
        return self.value if self.fixed else host + self.value


def _axis_refs(ref: CellRef, host_col: int, host_row: int) -> tuple[AxisRef, AxisRef]:
    col = AxisRef(True, ref.col) if ref.col_fixed else AxisRef(False, ref.col - host_col)
    row = AxisRef(True, ref.row) if ref.row_fixed else AxisRef(False, ref.row - host_row)
    return col, row


class WindowSpec(NamedTuple):
    """A template of the form ``AGG(range)`` — a windowed aggregate.

    ``func`` is the canonical aggregate name (SUM/COUNT/AVERAGE/MIN/MAX);
    the four :class:`AxisRef` fields locate the window corners relative
    to the host cell.  Per host row ``r`` (a column run), the window rows
    are ``[head_row.at(r), tail_row.at(r)]``: fixed head + relative tail
    is the growing prefix window, both relative is the sliding window.
    """

    func: str
    head_col: AxisRef
    head_row: AxisRef
    tail_col: AxisRef
    tail_row: AxisRef


_WINDOW_FUNCS = {
    "SUM": "SUM",
    "COUNT": "COUNT",
    "AVERAGE": "AVERAGE",
    "AVG": "AVERAGE",
    "MIN": "MIN",
    "MAX": "MAX",
}


class ElementwiseIR(NamedTuple):
    """A template body that is pure float64 arithmetic over cell refs.

    ``root`` is a tuple tree — ``("const", x)``, ``("ref", i)`` (an index
    into ``refs``), ``("neg", a)``, ``("pct", a)``, and ``("add" | "sub"
    | "mul" | "div", a, b)`` — mirroring the compiled closure tree node
    for node, so an array evaluation of it performs exactly the same
    IEEE-754 operations in exactly the same order as the per-cell
    closure.  ``refs`` are the distinct cell references as ``(col_axis,
    row_axis)`` :class:`AxisRef` pairs.

    The subset is chosen so a whole same-template run can evaluate as
    one numpy sweep (:func:`repro.engine.vectorized.evaluate_elementwise_run`)
    with bit-identical results on lanes whose inputs are empty/number/
    bool — any other lane (strings that might coerce, errors that must
    propagate, ``/0`` lanes, off-sheet rows) is masked out and delegated
    to the per-cell path.  ``^`` is deliberately *out* of the subset:
    the four basic operations are single correctly-rounded IEEE-754
    instructions everywhere, but ``pow`` is a libm call whose vectorised
    numpy implementation may differ from the scalar one in the last ULP.
    """

    root: object
    refs: tuple[tuple[AxisRef, AxisRef], ...]


def _elementwise_node(node: Node, host_col: int, host_row: int,
                      refs: list[tuple[AxisRef, AxisRef]]):
    if isinstance(node, Number):
        return ("const", float(node.value))
    if isinstance(node, Boolean):
        return ("const", 1.0 if node.value else 0.0)
    if isinstance(node, CellNode):
        if node.sheet is not None:
            raise _Unsupported("elementwise: sheet-qualified reference")
        pair = _axis_refs(node.ref, host_col, host_row)
        try:
            index = refs.index(pair)
        except ValueError:
            index = len(refs)
            refs.append(pair)
        return ("ref", index)
    if isinstance(node, UnaryOp):
        operand = _elementwise_node(node.operand, host_col, host_row, refs)
        if node.op == "-":
            return ("neg", operand)
        if node.op == "%":
            return ("pct", operand)
        return operand                   # unary + is to_number, masked numeric
    if isinstance(node, BinaryOp) and node.op in ("+", "-", "*", "/"):
        left = _elementwise_node(node.left, host_col, host_row, refs)
        right = _elementwise_node(node.right, host_col, host_row, refs)
        op = {"+": "add", "-": "sub", "*": "mul", "/": "div"}[node.op]
        return (op, left, right)
    raise _Unsupported(f"elementwise: {type(node).__name__}")


def elementwise_ir(ast: Node, host_col: int, host_row: int) -> ElementwiseIR | None:
    """The template's :class:`ElementwiseIR`, or None if out of subset.

    Bare roots are excluded even when representable: ``=A1`` yields the
    referenced value itself (None for a blank), not its numeric
    coercion, so it has no array equivalent; templates with no
    row-relative reference produce a constant column, which the per-cell
    closure already evaluates in O(1) each.
    """
    refs: list[tuple[AxisRef, AxisRef]] = []
    try:
        root = _elementwise_node(ast, host_col, host_row, refs)
    except _Unsupported:
        return None
    if root[0] in ("const", "ref"):
        return None
    if not any(not row_axis.fixed for _, row_axis in refs):
        return None
    return ElementwiseIR(root, tuple(refs))


def window_spec(ast: Node, host_col: int, host_row: int) -> WindowSpec | None:
    """The :class:`WindowSpec` of a pure windowed-aggregate template.

    Only same-sheet single-range aggregates qualify; anything else —
    extra arguments, scalar arguments, cross-sheet ranges — evaluates
    through the compiled closure (or the interpreter) per cell.
    """
    if not isinstance(ast, FunctionCall):
        return None
    func = _WINDOW_FUNCS.get(ast.name)
    if func is None or len(ast.args) != 1:
        return None
    rng = ast.args[0]
    if not isinstance(rng, RangeNode) or rng.sheet is not None:
        return None
    head_col, head_row = _axis_refs(rng.head, host_col, host_row)
    tail_col, tail_row = _axis_refs(rng.tail, host_col, host_row)
    return WindowSpec(func, head_col, head_row, tail_col, tail_row)


# ---------------------------------------------------------------------------
# node compilers


def _compile_cell(node: CellNode, host_col: int, host_row: int) -> _Closure:
    ref_sheet = node.sheet
    col_ref, row_ref = _axis_refs(node.ref, host_col, host_row)

    def closure(res, sheet, col, row):
        c = col_ref.value if col_ref.fixed else col + col_ref.value
        r = row_ref.value if row_ref.fixed else row + row_ref.value
        if c < 1 or r < 1:
            raise ErrorSignal(REF_ERROR)
        value = res.get_value(ref_sheet if ref_sheet is not None else sheet, c, r)
        if isinstance(value, ExcelError):
            raise ErrorSignal(value)
        return value

    return closure


def _compile_range(node: RangeNode, host_col: int, host_row: int) -> _Closure:
    ref_sheet = node.sheet
    hc, hr = _axis_refs(node.head, host_col, host_row)
    tc, tr = _axis_refs(node.tail, host_col, host_row)

    def closure(res, sheet, col, row):
        c1 = hc.value if hc.fixed else col + hc.value
        r1 = hr.value if hr.fixed else row + hr.value
        c2 = tc.value if tc.fixed else col + tc.value
        r2 = tr.value if tr.fixed else row + tr.value
        if c1 > c2:
            c1, c2 = c2, c1
        if r1 > r2:
            r1, r2 = r2, r1
        if c1 < 1 or r1 < 1:
            raise ErrorSignal(REF_ERROR)
        return RangeValue(
            Range(c1, r1, c2, r2),
            ref_sheet if ref_sheet is not None else sheet,
            res,
        )

    return closure


def _compile_unary(node: UnaryOp, host_col: int, host_row: int) -> _Closure:
    operand = _compile(node.operand, host_col, host_row)
    if node.op == "-":
        return lambda res, sheet, col, row: -to_number(operand(res, sheet, col, row))
    if node.op == "%":
        return lambda res, sheet, col, row: to_number(operand(res, sheet, col, row)) / 100.0
    return lambda res, sheet, col, row: to_number(operand(res, sheet, col, row))


_COMPARATORS: dict[str, Callable[[int], bool]] = {
    "=": lambda cmp: cmp == 0,
    "<>": lambda cmp: cmp != 0,
    "<": lambda cmp: cmp < 0,
    "<=": lambda cmp: cmp <= 0,
    ">": lambda cmp: cmp > 0,
    ">=": lambda cmp: cmp >= 0,
}


def _compile_binary(node: BinaryOp, host_col: int, host_row: int) -> _Closure:
    # The interpreter evaluates BOTH operands before any coercion
    # (_eval_binary), so when the left operand coerces to one error and
    # the right operand *evaluates* to another, the right one wins.  The
    # compiled closures must keep that order: evaluate left, evaluate
    # right, then coerce.
    left = _compile(node.left, host_col, host_row)
    right = _compile(node.right, host_col, host_row)
    op = node.op
    if op == "&":

        def concat(res, sheet, col, row):
            lhs = left(res, sheet, col, row)
            rhs = right(res, sheet, col, row)
            return to_text(lhs) + to_text(rhs)

        return concat
    if op in _COMPARATORS:
        verdict = _COMPARATORS[op]
        return lambda res, sheet, col, row: verdict(
            compare_values(left(res, sheet, col, row), right(res, sheet, col, row))
        )
    if op == "+":

        def add(res, sheet, col, row):
            lhs = left(res, sheet, col, row)
            rhs = right(res, sheet, col, row)
            return to_number(lhs) + to_number(rhs)

        return add
    if op == "-":

        def sub(res, sheet, col, row):
            lhs = left(res, sheet, col, row)
            rhs = right(res, sheet, col, row)
            return to_number(lhs) - to_number(rhs)

        return sub
    if op == "*":

        def mul(res, sheet, col, row):
            lhs = left(res, sheet, col, row)
            rhs = right(res, sheet, col, row)
            return to_number(lhs) * to_number(rhs)

        return mul
    if op == "/":

        def div(res, sheet, col, row):
            lhs = left(res, sheet, col, row)
            rhs = right(res, sheet, col, row)
            return safe_divide(to_number(lhs), to_number(rhs))

        return div
    if op == "^":

        def power(res, sheet, col, row):
            lhs = left(res, sheet, col, row)
            rhs = right(res, sheet, col, row)
            lnum = to_number(lhs)
            rnum = to_number(rhs)
            try:
                result = lnum ** rnum
            except (OverflowError, ZeroDivisionError, ValueError):
                raise ErrorSignal(ExcelError("#NUM!")) from None
            if isinstance(result, complex):
                raise ErrorSignal(ExcelError("#NUM!"))
            return float(result)

        return power
    raise _Unsupported(f"operator {op!r}")


def _compile_if(args: list[_Closure]) -> _Closure:
    cond, then = args[0], args[1]
    otherwise = args[2] if len(args) >= 3 else None

    def closure(res, sheet, col, row):
        if to_bool(cond(res, sheet, col, row)):
            return then(res, sheet, col, row)
        if otherwise is not None:
            return otherwise(res, sheet, col, row)
        return False

    return closure


def _compile_and(args: list[_Closure]) -> _Closure:
    def closure(res, sheet, col, row):
        for arg in args:
            if not _truthy_for_logical(arg(res, sheet, col, row)):
                return False
        return True

    return closure


def _compile_or(args: list[_Closure]) -> _Closure:
    def closure(res, sheet, col, row):
        for arg in args:
            if _truthy_for_logical(arg(res, sheet, col, row)):
                return True
        return False

    return closure


def _compile_iferror(args: list[_Closure]) -> _Closure:
    attempt, recover = args

    def closure(res, sheet, col, row):
        try:
            value = attempt(res, sheet, col, row)
        except ErrorSignal:
            return recover(res, sheet, col, row)
        if isinstance(value, ExcelError):
            return recover(res, sheet, col, row)
        return value

    return closure


def _compile_iserror(args: list[_Closure]) -> _Closure:
    (attempt,) = args

    def closure(res, sheet, col, row):
        try:
            value = attempt(res, sheet, col, row)
        except ErrorSignal:
            return True
        return isinstance(value, ExcelError)

    return closure


# Lazy builtins the compiler short-circuits natively.  The remaining lazy
# functions (XOR, ROW/COLUMN/ROWS/COLUMNS, future registrations) fall
# back to the interpreter — that keeps the fallback path genuinely alive.
_LAZY_COMPILERS: dict[str, Callable[[list[_Closure]], _Closure]] = {
    "IF": _compile_if,
    "AND": _compile_and,
    "OR": _compile_or,
    "IFERROR": _compile_iferror,
    "ISERROR": _compile_iserror,
}


def _compile_call(node: FunctionCall, host_col: int, host_row: int) -> _Closure:
    spec = REGISTRY.get(node.name)
    if spec is None:
        raise _Unsupported(f"unknown function {node.name}")
    arity = len(node.args)
    if arity < spec.min_args or (spec.max_args is not None and arity > spec.max_args):
        def arity_error(res, sheet, col, row):
            raise ErrorSignal(VALUE_ERROR)

        return arity_error
    if spec.lazy:
        lazy_compiler = _LAZY_COMPILERS.get(node.name)
        if lazy_compiler is None:
            raise _Unsupported(f"lazy function {node.name}")
        return lazy_compiler([_compile(arg, host_col, host_row) for arg in node.args])
    impl = spec.impl
    args = tuple(_compile(arg, host_col, host_row) for arg in node.args)
    # Eager impls never touch the context argument (only lazy ones need
    # it for sub-evaluation), so the compiled call passes None.
    if len(args) == 1:
        arg0 = args[0]
        return lambda res, sheet, col, row: impl(None, arg0(res, sheet, col, row))
    if len(args) == 2:
        arg0, arg1 = args
        return lambda res, sheet, col, row: impl(
            None, arg0(res, sheet, col, row), arg1(res, sheet, col, row)
        )
    return lambda res, sheet, col, row: impl(
        None, *[arg(res, sheet, col, row) for arg in args]
    )


def _compile(node: Node, host_col: int, host_row: int) -> _Closure:
    if isinstance(node, Number):
        value = node.value
        return lambda res, sheet, col, row: value
    if isinstance(node, String):
        value = node.value
        return lambda res, sheet, col, row: value
    if isinstance(node, Boolean):
        value = node.value
        return lambda res, sheet, col, row: value
    if isinstance(node, ErrorLiteral):
        error = ExcelError(node.code)

        def raise_literal(res, sheet, col, row):
            raise ErrorSignal(error)

        return raise_literal
    if isinstance(node, CellNode):
        return _compile_cell(node, host_col, host_row)
    if isinstance(node, RangeNode):
        return _compile_range(node, host_col, host_row)
    if isinstance(node, UnaryOp):
        return _compile_unary(node, host_col, host_row)
    if isinstance(node, BinaryOp):
        return _compile_binary(node, host_col, host_row)
    if isinstance(node, FunctionCall):
        return _compile_call(node, host_col, host_row)
    raise _Unsupported(f"node {type(node).__name__}")


class CompiledTemplate:
    """One compiled formula template: closure + optional fast shapes.

    ``window`` marks a pure windowed aggregate (rolling evaluation);
    ``elementwise`` marks pure float arithmetic over cell refs (numpy
    array sweep).  Mutually exclusive by construction — a window root is
    a function call, which the elementwise subset rejects.
    """

    __slots__ = ("key", "fn", "window", "elementwise")

    def __init__(self, key: str, fn: _Closure, window: WindowSpec | None,
                 elementwise: ElementwiseIR | None = None):
        self.key = key
        self.fn = fn
        self.window = window
        self.elementwise = elementwise

    def run(self, resolver: CellResolver, sheet: str | None, col: int, row: int):
        """Evaluate at a host cell; same top-level contract as
        :meth:`~repro.formula.evaluator.Evaluator.evaluate` (errors come
        back as values, bare 1x1 ranges intersect implicitly)."""
        try:
            value = self.fn(resolver, sheet, col, row)
        except ErrorSignal as signal:
            return signal.error
        except RecursionError:  # pragma: no cover - parity with Evaluator
            return ExcelError("#VALUE!")
        if isinstance(value, RangeValue):
            if value.width == 1 and value.height == 1:
                return value.get(0, 0)
            return VALUE_ERROR
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f", window={self.window.func}" if self.window else ""
        return f"CompiledTemplate({self.key!r}{tag})"


def compile_template(ast: Node, host_col: int, host_row: int,
                     key: str | None = None) -> CompiledTemplate | None:
    """Compile one formula AST into a template, or None if unsupported.

    ``key`` is the template's R1C1 rendering (computed when omitted);
    the closure is position-independent — any host cell whose formula
    shares the key evaluates correctly through it.
    """
    if key is None:
        key = to_r1c1(ast, host_col, host_row)
    try:
        fn = _compile(ast, host_col, host_row)
    except _Unsupported:
        return None
    return CompiledTemplate(
        key, fn,
        window_spec(ast, host_col, host_row),
        elementwise_ir(ast, host_col, host_row),
    )


class TemplateRegistry:
    """Bounded cache of compiled templates keyed by R1C1 text.

    10,000 autofilled cells share one key and therefore compile exactly
    once; unsupported templates are negatively cached so the registry is
    consulted, not the compiler.  FIFO eviction keeps the registry
    bounded under adversarial churn (every formula unique).
    """

    def __init__(self, max_templates: int = 4096):
        self.max_templates = max_templates
        self._templates: dict[str, CompiledTemplate | None] = {}
        self.compilations = 0

    def __len__(self) -> int:
        return len(self._templates)

    def template_for(self, key: str, ast: Node, host_col: int,
                     host_row: int) -> CompiledTemplate | None:
        """The compiled template for ``key``, compiling on first sight."""
        try:
            return self._templates[key]
        except KeyError:
            pass
        while len(self._templates) >= self.max_templates:
            self._templates.pop(next(iter(self._templates)))
        template = compile_template(ast, host_col, host_row, key=key)
        self.compilations += 1
        self._templates[key] = template
        return template

    def clear(self) -> None:
        self._templates.clear()


_DEFAULT_REGISTRY = TemplateRegistry()


def default_registry() -> TemplateRegistry:
    """The process-wide registry shared by every engine by default."""
    return _DEFAULT_REGISTRY


class EvalStats:
    """Counters for how formula cells were evaluated (one engine's view)."""

    __slots__ = ("compiled_cells", "interpreted_cells", "windowed_cells",
                 "windowed_runs", "elementwise_cells", "elementwise_runs",
                 "lookup_index_hits", "lookup_index_builds",
                 "scenario_plan_reuses",
                 "parallel_regions", "parallel_dispatches",
                 "serial_fallbacks", "fallback_reason",
                 "shard_bootstraps", "shard_delta_bytes", "shard_fallbacks")

    #: The per-cell counters every engine accumulates.  Parallel region
    #: execution merges exactly these from worker stats (summation is
    #: commutative, so merge order cannot change the totals).
    #: ``lookup_index_hits`` belongs here because probe eligibility is a
    #: pure function of vector geometry — identical wherever the cell
    #: evaluates; builds are environment-dependent (each process worker
    #: builds privately) and stay outside, like ``serial_fallbacks``.
    CELL_COUNTERS = ("compiled_cells", "interpreted_cells", "windowed_cells",
                     "windowed_runs", "elementwise_cells", "elementwise_runs",
                     "lookup_index_hits")

    def __init__(self) -> None:
        self.compiled_cells = 0
        self.interpreted_cells = 0
        self.windowed_cells = 0
        self.windowed_runs = 0
        self.elementwise_cells = 0
        self.elementwise_runs = 0
        # Lookaside-index bookkeeping (repro.engine.lookup) and the
        # scenario engine's shared-plan replays (repro.engine.scenario).
        self.lookup_index_hits = 0
        self.lookup_index_builds = 0
        self.scenario_plan_reuses = 0
        # Parallel-recalc bookkeeping (repro.engine.parallel): regions the
        # partitioner produced, regions actually dispatched to workers, and
        # regions that fell back to serial re-execution (with the *last*
        # fallback's reason, or None when everything ran as planned).
        self.parallel_regions = 0
        self.parallel_dispatches = 0
        self.serial_fallbacks = 0
        self.fallback_reason = None
        # Persistent-shard bookkeeping (repro.engine.shard): shard
        # (re-)bootstraps shipped, bytes of plane deltas + patches sent to
        # resident workers, and shard dispatches that fell back serially.
        # Environment-dependent (like builds/fallbacks above), so outside
        # CELL_COUNTERS: serial and sharded runs stay snapshot-identical.
        self.shard_bootstraps = 0
        self.shard_delta_bytes = 0
        self.shard_fallbacks = 0

    @property
    def total_cells(self) -> int:
        return (self.compiled_cells + self.interpreted_cells
                + self.windowed_cells + self.elementwise_cells)

    def counter_snapshot(self) -> tuple:
        """The deterministic counters, in ``CELL_COUNTERS`` order."""
        return tuple(getattr(self, name) for name in self.CELL_COUNTERS)

    def absorb_counters(self, counters) -> None:
        """Merge another engine's counters (``CELL_COUNTERS`` order) in."""
        for name, delta in zip(self.CELL_COUNTERS, counters):
            setattr(self, name, getattr(self, name) + delta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EvalStats(compiled={self.compiled_cells}, "
            f"interpreted={self.interpreted_cells}, "
            f"windowed={self.windowed_cells} in {self.windowed_runs} runs, "
            f"elementwise={self.elementwise_cells} in {self.elementwise_runs} runs, "
            f"parallel={self.parallel_dispatches}/{self.parallel_regions} regions, "
            f"fallbacks={self.serial_fallbacks})"
        )


class CompilingEvaluator:
    """Per-cell evaluation through the template registry.

    The front door the recalculation engines use for a single formula
    cell: compiled closure when the template is covered, tree-walking
    interpreter otherwise.  Exposes the interpreter too, so callers can
    force it (``evaluation="interpreter"``) or use it as the fallback
    inside the windowed fast path.
    """

    __slots__ = ("resolver", "interpreter", "registry", "stats")

    def __init__(
        self,
        resolver: CellResolver,
        registry: TemplateRegistry | None = None,
        stats: EvalStats | None = None,
    ):
        self.resolver = resolver
        self.interpreter = Evaluator(resolver)
        self.registry = default_registry() if registry is None else registry
        self.stats = stats if stats is not None else EvalStats()

    def template_for_cell(self, cell, col: int, row: int) -> CompiledTemplate | None:
        """The cell's compiled template (None when uncompilable)."""
        key = cell.template_key(col, row)
        if not key:
            return None
        return self.registry.template_for(key, cell.formula_ast, col, row)

    def evaluate_cell(self, cell, sheet: str | None, col: int, row: int):
        """Evaluate one formula cell's AST to a value."""
        template = self.template_for_cell(cell, col, row)
        if template is not None:
            self.stats.compiled_cells += 1
            return template.run(self.resolver, sheet, col, row)
        self.stats.interpreted_cells += 1
        return self.interpreter.evaluate(cell.formula_ast, sheet, col, row)

    def interpret_cell(self, cell, sheet: str | None, col: int, row: int):
        """Evaluate one cell strictly through the tree-walking interpreter."""
        self.stats.interpreted_cells += 1
        return self.interpreter.evaluate(cell.formula_ast, sheet, col, row)
