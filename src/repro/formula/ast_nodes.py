"""AST node types for the formula language.

Every node knows how to render itself back to formula text
(:meth:`Node.to_formula`) and how to produce a *shifted* copy of itself
(:meth:`Node.shifted`) — the autofill transformation that moves relative
references while leaving ``$``-fixed axes in place.  Shifts that fall off
the sheet collapse the reference into a ``#REF!`` error literal, matching
spreadsheet behaviour.
"""

from __future__ import annotations

from typing import Iterator

from ..grid.range import Range
from ..grid.ref import CellRef
from .errors import REF_ERROR

__all__ = [
    "Node",
    "Number",
    "String",
    "Boolean",
    "ErrorLiteral",
    "CellNode",
    "RangeNode",
    "FunctionCall",
    "BinaryOp",
    "UnaryOp",
    "walk",
]


class Node:
    """Base class for all formula AST nodes."""

    __slots__ = ()

    def to_formula(self) -> str:
        raise NotImplementedError

    def children(self) -> tuple["Node", ...]:
        return ()

    def shifted(self, dc: int, dr: int) -> "Node":
        """Autofill shift: move relative references by ``(dc, dr)``."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.to_formula()})"

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self.to_formula() == other.to_formula()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.to_formula()))


class Number(Node):
    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = value

    def to_formula(self) -> str:
        if self.value == int(self.value) and abs(self.value) < 1e15:
            return str(int(self.value))
        return repr(self.value)


class String(Node):
    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value

    def to_formula(self) -> str:
        return '"' + self.value.replace('"', '""') + '"'


class Boolean(Node):
    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = value

    def to_formula(self) -> str:
        return "TRUE" if self.value else "FALSE"


class ErrorLiteral(Node):
    __slots__ = ("code",)

    def __init__(self, code: str):
        self.code = code

    def to_formula(self) -> str:
        return self.code


def _format_sheet_prefix(sheet: str | None) -> str:
    if sheet is None:
        return ""
    if sheet.isalnum() and not sheet[0].isdigit():
        return f"{sheet}!"
    return "'" + sheet.replace("'", "''") + "'!"


class CellNode(Node):
    """A single-cell reference, optionally sheet-qualified."""

    __slots__ = ("ref", "sheet")

    def __init__(self, ref: CellRef, sheet: str | None = None):
        self.ref = ref
        self.sheet = sheet

    def to_formula(self) -> str:
        return _format_sheet_prefix(self.sheet) + self.ref.to_a1()

    def to_range(self) -> Range:
        return Range.cell(self.ref.col, self.ref.row)

    def shifted(self, dc: int, dr: int) -> Node:
        try:
            return CellNode(self.ref.shifted(dc, dr), self.sheet)
        except ReferenceError:
            return ErrorLiteral(REF_ERROR.code)


class RangeNode(Node):
    """A rectangular range reference ``head:tail``, optionally sheet-qualified."""

    __slots__ = ("head", "tail", "sheet")

    def __init__(self, head: CellRef, tail: CellRef, sheet: str | None = None):
        self.head = head
        self.tail = tail
        self.sheet = sheet

    def to_formula(self) -> str:
        return _format_sheet_prefix(self.sheet) + f"{self.head.to_a1()}:{self.tail.to_a1()}"

    def to_range(self) -> Range:
        return Range(
            min(self.head.col, self.tail.col),
            min(self.head.row, self.tail.row),
            max(self.head.col, self.tail.col),
            max(self.head.row, self.tail.row),
        )

    def shifted(self, dc: int, dr: int) -> Node:
        try:
            return RangeNode(self.head.shifted(dc, dr), self.tail.shifted(dc, dr), self.sheet)
        except ReferenceError:
            return ErrorLiteral(REF_ERROR.code)


class FunctionCall(Node):
    __slots__ = ("name", "args")

    def __init__(self, name: str, args: "list[Node]"):
        self.name = name.upper()
        self.args = list(args)

    def to_formula(self) -> str:
        return f"{self.name}({','.join(arg.to_formula() for arg in self.args)})"

    def children(self) -> tuple[Node, ...]:
        return tuple(self.args)

    def shifted(self, dc: int, dr: int) -> Node:
        return FunctionCall(self.name, [arg.shifted(dc, dr) for arg in self.args])


class BinaryOp(Node):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Node, right: Node):
        self.op = op
        self.left = left
        self.right = right

    def to_formula(self) -> str:
        return f"({self.left.to_formula()}{self.op}{self.right.to_formula()})"

    def children(self) -> tuple[Node, ...]:
        return (self.left, self.right)

    def shifted(self, dc: int, dr: int) -> Node:
        return BinaryOp(self.op, self.left.shifted(dc, dr), self.right.shifted(dc, dr))


class UnaryOp(Node):
    """Prefix ``-``/``+`` or postfix ``%`` (op stored as ``%``)."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Node):
        self.op = op
        self.operand = operand

    def to_formula(self) -> str:
        if self.op == "%":
            return f"{self.operand.to_formula()}%"
        return f"{self.op}{self.operand.to_formula()}"

    def children(self) -> tuple[Node, ...]:
        return (self.operand,)

    def shifted(self, dc: int, dr: int) -> Node:
        return UnaryOp(self.op, self.operand.shifted(dc, dr))


def walk(node: Node) -> Iterator[Node]:
    """Pre-order traversal of a formula AST."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(current.children()))
