"""Runtime value model shared by the function library and evaluator.

Scalar values are plain Python: ``float`` for numbers, ``str`` for text,
``bool`` for logicals, ``None`` for blank cells, and
:class:`~repro.formula.errors.ExcelError` for error values.  A range
reference evaluates to a :class:`RangeValue`, a lazy window over the sheet
that aggregate and lookup functions consume.

Error propagation uses an internal control-flow exception
(:class:`ErrorSignal`): coercions raise it and the evaluator's public entry
point converts it back into the error value.
"""

from __future__ import annotations

from typing import Iterator, Protocol

from ..grid.range import Range
from .errors import DIV0, VALUE_ERROR, ExcelError

__all__ = [
    "CellResolver",
    "ErrorSignal",
    "RangeValue",
    "Scalar",
    "is_blank",
    "to_bool",
    "to_number",
    "to_text",
    "compare_values",
]

Scalar = "float | str | bool | None | ExcelError"


class CellResolver(Protocol):
    """What the evaluator needs from a spreadsheet backend."""

    def get_value(self, sheet: str | None, col: int, row: int):
        """Current value of a cell (None when blank)."""

    def iter_cells(self, sheet: str | None, rng: Range) -> Iterator[tuple[int, int, object]]:
        """Iterate the *non-blank* cells of a range as (col, row, value)."""


class ErrorSignal(Exception):
    """Internal short-circuit carrying a spreadsheet error value."""

    def __init__(self, error: ExcelError):
        super().__init__(error.code)
        self.error = error


class RangeValue:
    """A lazily-resolved window of cell values."""

    __slots__ = ("range", "sheet", "_resolver")

    def __init__(self, rng: Range, sheet: str | None, resolver: CellResolver):
        self.range = rng
        self.sheet = sheet
        self._resolver = resolver

    @property
    def width(self) -> int:
        return self.range.width

    @property
    def height(self) -> int:
        return self.range.height

    def get(self, row_offset: int, col_offset: int):
        """Value at a 0-based offset inside the range."""
        if not (0 <= row_offset < self.height and 0 <= col_offset < self.width):
            raise ErrorSignal(ExcelError("#REF!"))
        return self._resolver.get_value(
            self.sheet, self.range.c1 + col_offset, self.range.r1 + row_offset
        )

    def iter_nonblank(self) -> Iterator[object]:
        """Values of the occupied cells, errors included."""
        for _, _, value in self._resolver.iter_cells(self.sheet, self.range):
            yield value

    def iter_numbers(self) -> Iterator[float]:
        """Numeric cell values, skipping text/logicals/blanks (SUM semantics).

        Errors stored in referenced cells propagate.
        """
        for value in self.iter_nonblank():
            if isinstance(value, ExcelError):
                raise ErrorSignal(value)
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                yield float(value)

    def iter_all_positions(self) -> Iterator[tuple[int, int, object]]:
        """Every cell of the range (including blanks) with 0-based offsets."""
        for r in range(self.height):
            for c in range(self.width):
                yield r, c, self.get(r, c)

    def column_values(self, col_offset: int) -> Iterator[object]:
        for r in range(self.height):
            yield self.get(r, col_offset)

    def row_values(self, row_offset: int) -> Iterator[object]:
        for c in range(self.width):
            yield self.get(row_offset, c)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RangeValue({self.range.to_a1()})"


def is_blank(value) -> bool:
    return value is None


def to_number(value) -> float:
    """Coerce a scalar to a number, Excel-style."""
    if isinstance(value, ExcelError):
        raise ErrorSignal(value)
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if value is None:
        return 0.0
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            raise ErrorSignal(VALUE_ERROR) from None
    if isinstance(value, RangeValue):
        return to_number(_single_cell(value))
    raise ErrorSignal(VALUE_ERROR)


def to_text(value) -> str:
    if isinstance(value, ExcelError):
        raise ErrorSignal(value)
    if value is None:
        return ""
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    if isinstance(value, (int,)):
        return str(value)
    if isinstance(value, RangeValue):
        return to_text(_single_cell(value))
    return str(value)


def to_bool(value) -> bool:
    if isinstance(value, ExcelError):
        raise ErrorSignal(value)
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if value is None:
        return False
    if isinstance(value, str):
        upper = value.strip().upper()
        if upper == "TRUE":
            return True
        if upper == "FALSE":
            return False
        raise ErrorSignal(VALUE_ERROR)
    if isinstance(value, RangeValue):
        return to_bool(_single_cell(value))
    raise ErrorSignal(VALUE_ERROR)


def _single_cell(rng: RangeValue):
    """Implicit intersection: a 1x1 range used where a scalar is expected."""
    if rng.width == 1 and rng.height == 1:
        return rng.get(0, 0)
    raise ErrorSignal(VALUE_ERROR)


def _type_rank(value) -> int:
    # Excel comparison ordering: numbers < text < logicals.
    if isinstance(value, bool):
        return 2
    if isinstance(value, (int, float)) or value is None:
        return 0
    return 1


def compare_values(left, right) -> int:
    """Three-way comparison with Excel's cross-type ordering rules.

    Returns negative / zero / positive.  Text comparison is
    case-insensitive; blank coerces to the other operand's zero value.
    """
    if isinstance(left, ExcelError):
        raise ErrorSignal(left)
    if isinstance(right, ExcelError):
        raise ErrorSignal(right)
    if isinstance(left, RangeValue):
        left = _single_cell(left)
    if isinstance(right, RangeValue):
        right = _single_cell(right)
    if left is None and right is None:
        return 0
    if left is None:
        left = "" if isinstance(right, str) else (False if isinstance(right, bool) else 0.0)
    if right is None:
        right = "" if isinstance(left, str) else (False if isinstance(left, bool) else 0.0)
    rank_l, rank_r = _type_rank(left), _type_rank(right)
    if rank_l != rank_r:
        return -1 if rank_l < rank_r else 1
    if rank_l == 1:  # text
        ll, rr = left.lower(), right.lower()
        return -1 if ll < rr else (0 if ll == rr else 1)
    lf, rf = float(left), float(right)
    return -1 if lf < rf else (0 if lf == rf else 1)


def safe_divide(numerator: float, denominator: float) -> float:
    if denominator == 0:
        raise ErrorSignal(DIV0)
    return numerator / denominator
