"""Formula language: tokenizer, parser, reference extraction, evaluation."""

from .ast_nodes import (
    BinaryOp,
    Boolean,
    CellNode,
    ErrorLiteral,
    FunctionCall,
    Node,
    Number,
    RangeNode,
    String,
    UnaryOp,
    walk,
)
from .errors import (
    CYCLE_ERROR,
    DIV0,
    NA_ERROR,
    NAME_ERROR,
    NUM_ERROR,
    REF_ERROR,
    VALUE_ERROR,
    ExcelError,
    FormulaSyntaxError,
)
from .evaluator import EvalContext, Evaluator
from .parser import parse_formula
from .references import ReferencedRange, extract_references, references_of_formula
from .tokenizer import Token, TokenKind, tokenize
from .values import CellResolver, RangeValue

__all__ = [
    "BinaryOp",
    "Boolean",
    "CYCLE_ERROR",
    "CellNode",
    "CellResolver",
    "DIV0",
    "ErrorLiteral",
    "EvalContext",
    "Evaluator",
    "ExcelError",
    "FormulaSyntaxError",
    "FunctionCall",
    "NA_ERROR",
    "NAME_ERROR",
    "NUM_ERROR",
    "Node",
    "Number",
    "REF_ERROR",
    "RangeNode",
    "RangeValue",
    "ReferencedRange",
    "String",
    "Token",
    "TokenKind",
    "UnaryOp",
    "VALUE_ERROR",
    "extract_references",
    "parse_formula",
    "references_of_formula",
    "tokenize",
    "walk",
]
