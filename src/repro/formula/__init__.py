"""Formula language: tokenizer, parser, reference extraction, evaluation."""

from .ast_nodes import (
    BinaryOp,
    Boolean,
    CellNode,
    ErrorLiteral,
    FunctionCall,
    Node,
    Number,
    RangeNode,
    String,
    UnaryOp,
    walk,
)
from .errors import (
    CYCLE_ERROR,
    DIV0,
    NA_ERROR,
    NAME_ERROR,
    NUM_ERROR,
    REF_ERROR,
    VALUE_ERROR,
    ExcelError,
    FormulaSyntaxError,
)
from .compile import (
    CompiledTemplate,
    CompilingEvaluator,
    EvalStats,
    TemplateRegistry,
    WindowSpec,
    compile_template,
    default_registry,
)
from .evaluator import EvalContext, Evaluator
from .numeric import ExactSum, fsum_count
from .parser import parse_formula
from .r1c1 import to_r1c1
from .references import ReferencedRange, extract_references, references_of_formula
from .tokenizer import Token, TokenKind, tokenize
from .values import CellResolver, RangeValue

__all__ = [
    "BinaryOp",
    "Boolean",
    "CYCLE_ERROR",
    "CellNode",
    "CellResolver",
    "CompiledTemplate",
    "CompilingEvaluator",
    "DIV0",
    "ErrorLiteral",
    "EvalContext",
    "EvalStats",
    "Evaluator",
    "ExactSum",
    "ExcelError",
    "FormulaSyntaxError",
    "FunctionCall",
    "NA_ERROR",
    "NAME_ERROR",
    "NUM_ERROR",
    "Node",
    "Number",
    "REF_ERROR",
    "RangeNode",
    "RangeValue",
    "ReferencedRange",
    "String",
    "TemplateRegistry",
    "Token",
    "TokenKind",
    "UnaryOp",
    "VALUE_ERROR",
    "WindowSpec",
    "compile_template",
    "default_registry",
    "extract_references",
    "fsum_count",
    "parse_formula",
    "references_of_formula",
    "to_r1c1",
    "tokenize",
    "walk",
]
