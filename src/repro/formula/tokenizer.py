"""Tokenizer for the spreadsheet formula language.

Produces the token stream consumed by :mod:`repro.formula.parser`.  The
lexical grammar covers what real-world xlsx formulae need: numbers,
double-quoted strings (with ``""`` escapes), A1 cell references with
optional ``$`` markers, sheet-qualified references (``Sheet1!A1``,
``'My Sheet'!A1``), function and name identifiers, error literals, and the
full Excel operator set.
"""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple

from .errors import ERROR_CODES, FormulaSyntaxError

__all__ = ["Token", "TokenKind", "tokenize"]


class TokenKind:
    NUMBER = "NUMBER"
    STRING = "STRING"
    CELL = "CELL"
    IDENT = "IDENT"
    SHEET = "SHEET"      # quoted or bare sheet prefix, '!' consumed
    ERROR = "ERROR"      # literal like #REF!
    OP = "OP"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    COMMA = "COMMA"
    COLON = "COLON"
    PERCENT = "PERCENT"
    EOF = "EOF"


class Token(NamedTuple):
    kind: str
    text: str
    pos: int


_NUMBER_RE = re.compile(r"\d+(\.\d*)?([eE][+-]?\d+)?|\.\d+([eE][+-]?\d+)?")
_CELL_RE = re.compile(r"\$?[A-Za-z]{1,3}\$?\d+")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")
_WORD_BOUNDARY_RE = re.compile(r"[A-Za-z0-9_.$]")
# Longest operators first so that `<=` wins over `<`.
_OPERATORS = ("<>", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "^", "&")


def tokenize(text: str) -> list[Token]:
    """Tokenize a formula body (without any leading ``=``)."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == "(":
            yield Token(TokenKind.LPAREN, ch, i)
            i += 1
            continue
        if ch == ")":
            yield Token(TokenKind.RPAREN, ch, i)
            i += 1
            continue
        if ch == ",":
            yield Token(TokenKind.COMMA, ch, i)
            i += 1
            continue
        if ch == ":":
            yield Token(TokenKind.COLON, ch, i)
            i += 1
            continue
        if ch == "%":
            yield Token(TokenKind.PERCENT, ch, i)
            i += 1
            continue
        if ch == '"':
            token, i = _scan_string(text, i)
            yield token
            continue
        if ch == "'":
            token, i = _scan_quoted_sheet(text, i)
            yield token
            continue
        if ch == "#":
            token, i = _scan_error(text, i)
            yield token
            continue
        # ASCII digits only: Unicode "digits" like '²' satisfy isdigit()
        # but are not valid number characters in a formula.
        if ch in "0123456789" or (ch == "." and i + 1 < n and text[i + 1] in "0123456789"):
            match = _NUMBER_RE.match(text, i)
            yield Token(TokenKind.NUMBER, match.group(), i)
            i = match.end()
            continue
        if ch.isalpha() or ch in "_$":
            token, i = _scan_word(text, i)
            yield token
            continue
        op = _match_operator(text, i)
        if op is not None:
            yield Token(TokenKind.OP, op, i)
            i += len(op)
            continue
        raise FormulaSyntaxError(f"unexpected character {ch!r}", i)
    yield Token(TokenKind.EOF, "", n)


def _match_operator(text: str, i: int) -> str | None:
    for op in _OPERATORS:
        if text.startswith(op, i):
            return op
    return None


def _scan_string(text: str, start: int) -> tuple[Token, int]:
    i = start + 1
    parts: list[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == '"':
            if i + 1 < n and text[i + 1] == '"':  # escaped quote
                parts.append('"')
                i += 2
                continue
            return Token(TokenKind.STRING, "".join(parts), start), i + 1
        parts.append(ch)
        i += 1
    raise FormulaSyntaxError("unterminated string literal", start)


def _scan_quoted_sheet(text: str, start: int) -> tuple[Token, int]:
    """Scan ``'Sheet Name'!`` — the trailing ``!`` is required and consumed."""
    i = start + 1
    parts: list[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":  # escaped apostrophe
                parts.append("'")
                i += 2
                continue
            if i + 1 < n and text[i + 1] == "!":
                return Token(TokenKind.SHEET, "".join(parts), start), i + 2
            raise FormulaSyntaxError("quoted sheet name must be followed by '!'", i)
        parts.append(ch)
        i += 1
    raise FormulaSyntaxError("unterminated sheet name", start)


def _scan_error(text: str, start: int) -> tuple[Token, int]:
    for code in ERROR_CODES:
        if text.startswith(code, start):
            return Token(TokenKind.ERROR, code, start), start + len(code)
    raise FormulaSyntaxError("unknown error literal", start)


def _scan_word(text: str, start: int) -> tuple[Token, int]:
    """Scan a cell reference, sheet prefix, or identifier.

    A1-shaped words (optionally with ``$`` markers) become CELL tokens
    unless immediately followed by ``(`` — ``LOG10(...)`` is a function
    call even though ``LOG10`` looks like a cell address.  A bare
    identifier followed by ``!`` is a sheet prefix.
    """
    n = len(text)
    cell_match = _CELL_RE.match(text, start)
    if cell_match is not None:
        end = cell_match.end()
        # The cell pattern must not be a prefix of a longer word
        # (e.g. `A1B` is an identifier, not cell A1 followed by `B`).
        is_complete_word = end >= n or not _WORD_BOUNDARY_RE.match(text[end])
        next_ch = text[end] if end < n else ""
        if is_complete_word and next_ch != "(":
            word = cell_match.group()
            letters = word.replace("$", "")
            row_part = letters.lstrip("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz")
            if row_part and int(row_part) >= 1:
                if next_ch == "!":
                    # A sheet named like a cell (`S1!A1`), as spreadsheets allow.
                    if "$" in word:
                        raise FormulaSyntaxError("'$' not allowed in sheet names", start)
                    return Token(TokenKind.SHEET, word, start), end + 1
                return Token(TokenKind.CELL, word, start), end
    if text[start] == "$":
        raise FormulaSyntaxError("'$' must introduce a cell reference", start)
    ident_match = _IDENT_RE.match(text, start)
    if ident_match is None:
        raise FormulaSyntaxError(f"unexpected character {text[start]!r}", start)
    end = ident_match.end()
    if end < n and text[end] == "!":
        return Token(TokenKind.SHEET, ident_match.group(), start), end + 1
    return Token(TokenKind.IDENT, ident_match.group(), start), end
