"""Pratt parser for spreadsheet formulae.

Operator precedence follows Excel: comparisons bind loosest, then text
concatenation ``&``, additive, multiplicative, exponentiation (which Excel
evaluates *left*-associatively, unlike mathematical convention), prefix
sign, and postfix percent.  Range construction ``A1:B2`` binds tightest.
"""

from __future__ import annotations

from functools import lru_cache

from ..grid.ref import CellRef
from .ast_nodes import (
    BinaryOp,
    Boolean,
    CellNode,
    ErrorLiteral,
    FunctionCall,
    Node,
    Number,
    RangeNode,
    String,
    UnaryOp,
)
from .errors import FormulaSyntaxError
from .tokenizer import Token, TokenKind, tokenize

__all__ = ["parse_formula", "Parser"]

_COMPARISON_OPS = {"=", "<>", "<", "<=", ">", ">="}
_BINARY_PRECEDENCE = {
    "=": 1, "<>": 1, "<": 1, "<=": 1, ">": 1, ">=": 1,
    "&": 2,
    "+": 3, "-": 3,
    "*": 4, "/": 4,
    "^": 5,
}
_PREFIX_PRECEDENCE = 6
_PERCENT_PRECEDENCE = 7


@lru_cache(maxsize=4096)
def _parse_body(body: str) -> Node:
    return Parser(tokenize(body)).parse()


def parse_formula(text: str) -> Node:
    """Parse a formula into an AST.

    Accepts either a full formula with a leading ``=`` or a bare
    expression body.  Results are memoised in a bounded LRU cache keyed
    on the body text: AST nodes are immutable once built (``shifted``
    returns copies), so repeated parses of the same text — re-evaluating
    an edited cell, loading a column of identical absolute formulae —
    share one tree.  ``parse_formula.cache_info()`` /
    ``parse_formula.cache_clear()`` expose the cache for tests.
    """
    body = text[1:] if text.startswith("=") else text
    return _parse_body(body)


parse_formula.cache_info = _parse_body.cache_info
parse_formula.cache_clear = _parse_body.cache_clear


class Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._i = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._i]

    def _advance(self) -> Token:
        token = self._tokens[self._i]
        if token.kind != TokenKind.EOF:
            self._i += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            raise FormulaSyntaxError(
                f"expected {kind}, found {token.kind} {token.text!r}", token.pos
            )
        return self._advance()

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> Node:
        node = self._parse_expression(0)
        trailing = self._peek()
        if trailing.kind != TokenKind.EOF:
            raise FormulaSyntaxError(
                f"unexpected trailing input {trailing.text!r}", trailing.pos
            )
        return node

    def _parse_expression(self, min_precedence: int) -> Node:
        left = self._parse_prefix()
        while True:
            token = self._peek()
            if token.kind == TokenKind.PERCENT:
                if _PERCENT_PRECEDENCE < min_precedence:
                    break
                self._advance()
                left = UnaryOp("%", left)
                continue
            if token.kind != TokenKind.OP:
                break
            precedence = _BINARY_PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                break
            self._advance()
            # All Excel binary operators are left-associative (including ^).
            right = self._parse_expression(precedence + 1)
            left = BinaryOp(token.text, left, right)
        return left

    def _parse_prefix(self) -> Node:
        token = self._peek()
        if token.kind == TokenKind.OP and token.text in ("-", "+"):
            self._advance()
            operand = self._parse_expression(_PREFIX_PRECEDENCE)
            if token.text == "+":
                return operand
            return UnaryOp("-", operand)
        return self._parse_primary()

    def _parse_primary(self) -> Node:
        token = self._peek()
        if token.kind == TokenKind.NUMBER:
            self._advance()
            return Number(float(token.text))
        if token.kind == TokenKind.STRING:
            self._advance()
            return String(token.text)
        if token.kind == TokenKind.ERROR:
            self._advance()
            return ErrorLiteral(token.text)
        if token.kind == TokenKind.LPAREN:
            self._advance()
            inner = self._parse_expression(0)
            self._expect(TokenKind.RPAREN)
            return inner
        if token.kind == TokenKind.SHEET:
            self._advance()
            return self._parse_reference(sheet=token.text)
        if token.kind == TokenKind.CELL:
            return self._parse_reference(sheet=None)
        if token.kind == TokenKind.IDENT:
            return self._parse_ident()
        raise FormulaSyntaxError(
            f"unexpected token {token.kind} {token.text!r}", token.pos
        )

    def _parse_reference(self, sheet: str | None) -> Node:
        head_token = self._expect(TokenKind.CELL)
        head = CellRef.from_a1(head_token.text)
        if self._peek().kind == TokenKind.COLON:
            self._advance()
            tail_token = self._expect(TokenKind.CELL)
            tail = CellRef.from_a1(tail_token.text)
            return RangeNode(head, tail, sheet)
        return CellNode(head, sheet)

    def _parse_ident(self) -> Node:
        token = self._advance()
        name = token.text.upper()
        if self._peek().kind == TokenKind.LPAREN:
            self._advance()
            args: list[Node] = []
            if self._peek().kind != TokenKind.RPAREN:
                args.append(self._parse_expression(0))
                while self._peek().kind == TokenKind.COMMA:
                    self._advance()
                    args.append(self._parse_expression(0))
            self._expect(TokenKind.RPAREN)
            return FunctionCall(name, args)
        if name == "TRUE":
            return Boolean(True)
        if name == "FALSE":
            return Boolean(False)
        # Bare names (named ranges) are out of scope: they evaluate to
        # #NAME? just as an unknown identifier would in a spreadsheet.
        return ErrorLiteral("#NAME?")
