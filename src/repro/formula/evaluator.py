"""Formula evaluation against a spreadsheet backend.

The evaluator walks a parsed AST and produces a scalar value (or an
:class:`~repro.formula.errors.ExcelError`).  It is deliberately
independent of the sheet model: any object satisfying
:class:`~repro.formula.values.CellResolver` can back it, which is what
lets the recalculation engine, the examples, and the tests share it.
"""

from __future__ import annotations

from ..grid.range import Range
from .ast_nodes import (
    BinaryOp,
    Boolean,
    CellNode,
    ErrorLiteral,
    FunctionCall,
    Node,
    Number,
    RangeNode,
    String,
    UnaryOp,
)
from .errors import NAME_ERROR, VALUE_ERROR, ExcelError
from .parser import parse_formula
from .values import (
    CellResolver,
    ErrorSignal,
    RangeValue,
    compare_values,
    safe_divide,
    to_number,
    to_text,
)
from .functions import REGISTRY

__all__ = ["Evaluator", "EvalContext"]


class EvalContext:
    """Where a formula is being evaluated: host sheet and cell position."""

    __slots__ = ("evaluator", "sheet", "col", "row")

    def __init__(self, evaluator: "Evaluator", sheet: str | None, col: int, row: int):
        self.evaluator = evaluator
        self.sheet = sheet
        self.col = col
        self.row = row

    def eval(self, node: Node):
        """Evaluate a sub-expression in this context (used by lazy builtins)."""
        return self.evaluator._eval(node, self)

    def eval_reference(self, node: Node) -> Range:
        """Resolve a reference argument to its range (for ROW/COLUMN/ROWS)."""
        if isinstance(node, (CellNode, RangeNode)):
            return node.to_range()
        raise ErrorSignal(VALUE_ERROR)


class Evaluator:
    def __init__(self, resolver: CellResolver):
        self._resolver = resolver

    def evaluate(self, node: Node, sheet: str | None = None, col: int = 1, row: int = 1):
        """Evaluate an AST to a value; errors come back as ExcelError values."""
        ctx = EvalContext(self, sheet, col, row)
        try:
            value = self._eval(node, ctx)
        except ErrorSignal as signal:
            return signal.error
        except RecursionError:
            return ExcelError("#VALUE!")
        if isinstance(value, RangeValue):
            # Implicit intersection of a bare range at top level.
            if value.width == 1 and value.height == 1:
                return value.get(0, 0)
            return VALUE_ERROR
        return value

    def evaluate_formula(
        self, text: str, sheet: str | None = None, col: int = 1, row: int = 1
    ):
        return self.evaluate(parse_formula(text), sheet, col, row)

    # -- recursive evaluation ------------------------------------------------

    def _eval(self, node: Node, ctx: EvalContext):
        if isinstance(node, Number):
            return node.value
        if isinstance(node, String):
            return node.value
        if isinstance(node, Boolean):
            return node.value
        if isinstance(node, ErrorLiteral):
            raise ErrorSignal(ExcelError(node.code))
        if isinstance(node, CellNode):
            value = self._resolver.get_value(
                node.sheet if node.sheet is not None else ctx.sheet,
                node.ref.col,
                node.ref.row,
            )
            if isinstance(value, ExcelError):
                raise ErrorSignal(value)
            return value
        if isinstance(node, RangeNode):
            sheet = node.sheet if node.sheet is not None else ctx.sheet
            return RangeValue(node.to_range(), sheet, self._resolver)
        if isinstance(node, UnaryOp):
            operand = self._eval(node.operand, ctx)
            if node.op == "-":
                return -to_number(operand)
            if node.op == "%":
                return to_number(operand) / 100.0
            return to_number(operand)
        if isinstance(node, BinaryOp):
            return self._eval_binary(node, ctx)
        if isinstance(node, FunctionCall):
            return self._eval_call(node, ctx)
        raise ErrorSignal(VALUE_ERROR)

    def _eval_binary(self, node: BinaryOp, ctx: EvalContext):
        op = node.op
        left = self._eval(node.left, ctx)
        right = self._eval(node.right, ctx)
        if op == "&":
            return to_text(left) + to_text(right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            cmp = compare_values(left, right)
            return {
                "=": cmp == 0, "<>": cmp != 0,
                "<": cmp < 0, "<=": cmp <= 0,
                ">": cmp > 0, ">=": cmp >= 0,
            }[op]
        lnum = to_number(left)
        rnum = to_number(right)
        if op == "+":
            return lnum + rnum
        if op == "-":
            return lnum - rnum
        if op == "*":
            return lnum * rnum
        if op == "/":
            return safe_divide(lnum, rnum)
        if op == "^":
            try:
                result = lnum ** rnum
            except (OverflowError, ZeroDivisionError, ValueError):
                raise ErrorSignal(ExcelError("#NUM!")) from None
            if isinstance(result, complex):
                raise ErrorSignal(ExcelError("#NUM!"))
            return float(result)
        raise ErrorSignal(VALUE_ERROR)

    def _eval_call(self, node: FunctionCall, ctx: EvalContext):
        spec = REGISTRY.get(node.name)
        if spec is None:
            raise ErrorSignal(NAME_ERROR)
        arity = len(node.args)
        if arity < spec.min_args or (spec.max_args is not None and arity > spec.max_args):
            raise ErrorSignal(VALUE_ERROR)
        if spec.lazy:
            return spec.impl(ctx, node.args)
        values = [self._eval(arg, ctx) for arg in node.args]
        return spec.impl(ctx, *values)
