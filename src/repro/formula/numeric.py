"""Exact floating-point accumulation (Shewchuk partials).

The function library computes SUM/AVERAGE with :func:`math.fsum`, whose
result is the *correctly rounded* value of the exact real sum — and is
therefore independent of summation order.  The windowed-aggregate fast
path (:mod:`repro.engine.vectorized`) must produce observationally
identical values while adding and removing elements incrementally, which
a naive running total cannot do (it accumulates rounding).

:class:`ExactSum` maintains the same non-overlapping expansion of
partials that ``fsum`` builds internally (Shewchuk's grow-expansion).
The expansion represents the current sum *exactly*, so:

* ``add(x)`` and ``subtract(x)`` are exact — removing an element that
  was previously added restores the exact sum of the remaining
  elements;
* :meth:`value` returns ``math.fsum`` of the partials, i.e. the
  correctly rounded exact sum — bit-identical to
  ``math.fsum(current_elements)`` in any order.

Each ``add`` is ``O(p)`` for ``p`` live partials; for well-scaled data
``p`` stays tiny (typically 1-3), giving amortised O(1) per element.
"""

from __future__ import annotations

import math

__all__ = ["ExactSum", "fsum_count"]


_INF = math.inf


class ExactSum:
    """An exact, incrementally-updatable floating-point sum.

    Special values follow ``math.fsum``: non-finite inputs are kept
    aside (the two-sum cascade is only exact over finite floats) and
    folded back in :meth:`value`, so a sum containing ``inf`` is ``inf``,
    any ``nan`` is ``nan``, and mixing ``+inf`` with ``-inf`` raises the
    same ``ValueError`` fsum raises.  A *finite* sequence whose running
    sum leaves the float range raises fsum's ``OverflowError`` (at
    :meth:`add` time; the accumulator is unusable afterwards).
    """

    __slots__ = ("_partials", "_specials")

    def __init__(self) -> None:
        self._partials: list[float] = []
        self._specials: list[float] = []

    def add(self, x: float) -> None:
        """Grow the expansion by ``x`` (exact; two-sum cascade)."""
        if x - x != 0.0:                       # nan or +/-inf
            self._specials.append(x)
            return
        partials = self._partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            if hi == _INF or hi == -_INF:
                raise OverflowError("intermediate overflow in fsum")
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def subtract(self, x: float) -> None:
        """Remove a previously-added ``x`` (exact: adds ``-x``).

        A non-finite ``x`` cancels one matching special entry instead —
        adding its negation would poison the sum (``inf + -inf``).
        """
        if x - x != 0.0:
            specials = self._specials
            for i, value in enumerate(specials):
                if value == x or (value != value and x != x):
                    del specials[i]
                    return
            specials.append(-x)                # unbalanced: degrade like fsum
            return
        self.add(-x)

    def value(self) -> float:
        """The correctly rounded current sum (``fsum`` semantics)."""
        if self._specials:
            return math.fsum(self._specials + self._partials)
        return math.fsum(self._partials)

    def __bool__(self) -> bool:  # pragma: no cover - debugging aid
        return bool(self._partials) or bool(self._specials)


def fsum_count(iterable) -> tuple[float, int]:
    """``(math.fsum(values), count)`` in one pass without materialising.

    The sum is accumulated through :class:`ExactSum`, so the result is
    bit-identical to ``math.fsum`` over the same elements.
    """
    acc = ExactSum()
    count = 0
    for x in iterable:
        acc.add(x)
        count += 1
    return acc.value(), count
