"""Recalculation engines built on formula graphs."""

from .async_engine import AsyncRecalcEngine, CellView, UpdateTicket
from .recalc import RecalcEngine, RecalcResult

__all__ = [
    "AsyncRecalcEngine",
    "CellView",
    "RecalcEngine",
    "RecalcResult",
    "UpdateTicket",
]
