"""Recalculation engines built on formula graphs.

Three execution models over the same graph interface:

* :class:`RecalcEngine` — synchronous per-edit updates: graph
  maintenance, a dependents BFS, and a topological re-evaluation per
  edit (the paper's motivating application, Sec. I);
* :class:`~repro.engine.batch.BatchEditSession` — the batched pipeline:
  edits coalesce, maintenance and recalculation are paid once per
  commit (open one with ``engine.begin_batch()``);
* :class:`AsyncRecalcEngine` — DataSpread-style deferred execution:
  updates return at the control-return point, recomputation is pumped
  in steps.

Structural edits (row/column inserts and deletes) run through
:mod:`repro.engine.structural`: ``engine.insert_rows(...)`` and friends
rewrite the sheet (workbook-wide with ``workbook=``), maintain the
compressed graph incrementally, and re-evaluate just the dirty set.

Durability runs through :mod:`repro.engine.journal`: hand a
:class:`Journal` to an engine and every committed edit is appended to an
fsync'd write-ahead log; :func:`recover` (surfaced as
``Workbook.restore``) replays it onto a snapshot after a crash.
"""

from .async_engine import AsyncRecalcEngine, CellView, UpdateTicket
from .batch import BatchEditSession, BatchResult
from .journal import (
    Journal,
    JournalFormatError,
    RecoveryResult,
    read_journal,
    recover,
)
from .parallel import shutdown_pools
from .recalc import CircularReferenceError, RecalcEngine, RecalcResult
from .scenario import ScenarioEngine
from .shard import ShardRuntime
from .structural import StructuralEditResult, apply_structural_edit

__all__ = [
    "AsyncRecalcEngine",
    "BatchEditSession",
    "BatchResult",
    "CellView",
    "CircularReferenceError",
    "Journal",
    "JournalFormatError",
    "RecalcEngine",
    "RecalcResult",
    "RecoveryResult",
    "ScenarioEngine",
    "ShardRuntime",
    "StructuralEditResult",
    "UpdateTicket",
    "apply_structural_edit",
    "read_journal",
    "recover",
    "shutdown_pools",
]
