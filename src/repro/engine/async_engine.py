"""Asynchronous recalculation, after DataSpread's execution model.

The paper's host system (Sec. I, VI-A) returns control to the user as
soon as the dependents of an update have been *identified and hidden*;
the actual recomputation happens asynchronously.  Finding dependents is
therefore on the critical path — the very operation TACO accelerates.

:class:`AsyncRecalcEngine` models that lifecycle without threads: an
update marks its dependent formula cells dirty and returns immediately
(the control-return point); :meth:`step` then pumps the background
computation a bounded number of cells at a time, always evaluating a
cell whose dirty precedents have already been resolved.  Reads of dirty
cells report their staleness, which is what a UI uses to grey cells out.
"""

from __future__ import annotations

import time
from typing import NamedTuple

from ..core.taco_graph import TacoGraph, dependencies_column_major
from ..formula.compile import CompilingEvaluator
from ..graphs.base import FormulaGraph, expand_cells
from ..grid.range import Range
from ..sheet.sheet import Dependency, Sheet, SheetResolver

__all__ = ["AsyncRecalcEngine", "UpdateTicket", "CellView"]


class UpdateTicket(NamedTuple):
    """What the user gets back immediately after an update.

    ``dirty_count`` is *this update's own* dirty set — the formula
    cells this edit marked stale (including the edited cell itself for
    a formula edit).  ``pending`` is the engine-wide total still
    awaiting recomputation, which also counts carry-over from earlier
    updates that have not been pumped yet.
    """

    dirty_ranges: list[Range]
    dirty_count: int
    control_return_seconds: float
    pending: int = 0


class CellView(NamedTuple):
    """A read of a cell under the asynchronous model."""

    value: object
    is_dirty: bool


class AsyncRecalcEngine:
    """A sheet whose recomputation is decoupled from updates."""

    def __init__(
        self, sheet: Sheet, graph: FormulaGraph | None = None, *,
        evaluation: str = "auto",
    ):
        if evaluation not in ("auto", "interpreter"):
            raise ValueError(f"unknown evaluation mode {evaluation!r}")
        self.sheet = sheet
        if graph is None:
            graph = TacoGraph.full()
            graph.build(dependencies_column_major(sheet))
        self.graph = graph
        self.evaluation = evaluation
        self.cell_evaluator = CompilingEvaluator(SheetResolver(sheet))
        self.eval_stats = self.cell_evaluator.stats
        self.evaluator = self.cell_evaluator.interpreter
        self._dirty: set[tuple[int, int]] = set()

    # -- the critical path -----------------------------------------------------

    def set_value(self, target, value) -> UpdateTicket:
        """Apply an update; returns once the dirty set is known.

        Overwriting a formula cell with a value clears the cell's own
        dependencies from the graph (same contract as the synchronous
        engine): stale edges would otherwise keep reporting phantom
        dirty cells forever.
        """
        start = time.perf_counter()
        pos = self._position(target)
        cell_range = Range.cell(*pos)
        previous = self.sheet.cell_at(pos)
        if previous is not None and previous.is_formula:
            self.graph.clear_cells(cell_range)
            self._dirty.discard(pos)
        self.sheet.set_value(pos, value)
        dirty_ranges = self.graph.find_dependents(cell_range)
        marked = self._mark_dirty(dirty_ranges)
        elapsed = time.perf_counter() - start
        return UpdateTicket(dirty_ranges, len(marked), elapsed, len(self._dirty))

    def set_formula(self, target, text: str) -> UpdateTicket:
        """Rewire a formula cell; returns once its dependents are marked.

        Graph maintenance (clear + insert, Sec. IV-C) plus one
        dependents BFS — the same control-return critical path as
        :meth:`set_value`, with maintenance cost proportional to the
        compressed edges touched, not the raw dependencies.
        """
        start = time.perf_counter()
        pos = self._position(target)
        cell_range = Range.cell(*pos)
        self.graph.clear_cells(cell_range)
        self.sheet.set_formula(pos, text)
        cell = self.sheet.cell_at(pos)
        for ref in cell.references:
            if ref.sheet is not None and ref.sheet != self.sheet.name:
                continue
            self.graph.add_dependency(Dependency(ref.range, cell_range, ref.cue))
        dirty_ranges = self.graph.find_dependents(cell_range)
        marked = self._mark_dirty(dirty_ranges)
        marked.add(pos)
        self._dirty.add(pos)
        elapsed = time.perf_counter() - start
        return UpdateTicket(dirty_ranges, len(marked), elapsed, len(self._dirty))

    def clear_cell(self, target) -> UpdateTicket:
        """Erase a cell; returns once its dependents are marked.

        Same clear-graph-then-find-dependents contract as
        ``RecalcEngine.clear_cell``: the cell's own dependency edges are
        removed before the dependents BFS, so the cleared cell stops
        feeding phantom dirty edges, while everything that read it gets
        marked for recomputation.
        """
        start = time.perf_counter()
        pos = self._position(target)
        cell_range = Range.cell(*pos)
        self.graph.clear_cells(cell_range)
        self._dirty.discard(pos)
        self.sheet.clear_cell(pos)
        dirty_ranges = self.graph.find_dependents(cell_range)
        marked = self._mark_dirty(dirty_ranges)
        elapsed = time.perf_counter() - start
        return UpdateTicket(dirty_ranges, len(marked), elapsed, len(self._dirty))

    def note_external_dirty(self, dirty_ranges) -> int:
        """Mark formula cells in ``dirty_ranges`` stale without an edit.

        Integration hook for callers that mutate the sheet through a
        sibling engine over the same sheet+graph (batch commits,
        structural edits) and need this engine's deferred pump to pick
        up the fallout.  Returns how many formula cells were marked.
        """
        return len(self._mark_dirty(list(dirty_ranges)))

    def _mark_dirty(self, dirty_ranges: list[Range]) -> set[tuple[int, int]]:
        marked: set[tuple[int, int]] = set()
        for pos in expand_cells(dirty_ranges):
            if self.sheet.formula_at(pos) is not None:
                marked.add(pos)
        self._dirty.update(marked)
        return marked

    @staticmethod
    def _position(target) -> tuple[int, int]:
        from ..sheet.sheet import _coerce_pos

        return _coerce_pos(target)

    # -- the background pump -----------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of formula cells still awaiting recomputation."""
        return len(self._dirty)

    def is_dirty(self, target) -> bool:
        """Whether a cell still awaits recomputation (O(1))."""
        return self._position(target) in self._dirty

    def read(self, target) -> CellView:
        """Read a cell as the UI would: value plus staleness flag."""
        pos = self._position(target)
        return CellView(self.sheet.get_value(pos), pos in self._dirty)

    def step(self, max_cells: int = 64) -> int:
        """Recompute up to ``max_cells`` ready dirty cells; returns how
        many were computed.

        A cell is *ready* when none of its referenced cells is dirty.
        Each step scans the dirty set once, so a long chain drains over
        several steps — the asynchronous, incremental behaviour the
        model is about.
        """
        computed = 0
        while computed < max_cells and self._dirty:
            before = len(self._dirty)
            ready = self._pick_ready(max_cells - computed)
            if not ready:
                if len(self._dirty) < before:
                    # The scan only dropped vanished cells; cells that
                    # looked blocked on them deserve a fresh pick.
                    continue
                # Only cycles remain: surface them as #CYCLE! and stop.
                from ..formula.errors import CYCLE_ERROR

                for pos in self._dirty:
                    cell = self.sheet.formula_at(pos)
                    if cell is not None:
                        cell.value = CYCLE_ERROR
                self._dirty.clear()
                break
            for pos in ready:
                cell = self.sheet.formula_at(pos)
                if cell is None:
                    # Vanished between the pick and the evaluation
                    # (cleared or overwritten with a plain value).
                    self._dirty.discard(pos)
                    continue
                if self.evaluation == "auto":
                    cell.value = self.cell_evaluator.evaluate_cell(
                        cell, self.sheet.name, pos[0], pos[1]
                    )
                else:
                    cell.value = self.cell_evaluator.interpret_cell(
                        cell, self.sheet.name, pos[0], pos[1]
                    )
                self._dirty.discard(pos)
                computed += 1
        return computed

    def drain(self, batch: int = 256) -> int:
        """Run steps until nothing is dirty; returns total cells computed."""
        total = 0
        while self._dirty:
            done = self.step(batch)
            total += done
            if done == 0:
                break
        return total

    def _pick_ready(self, limit: int) -> list[tuple[int, int]]:
        ready: list[tuple[int, int]] = []
        vanished: list[tuple[int, int]] = []
        for pos in self._dirty:
            cell = self.sheet.formula_at(pos)
            if cell is None:
                # The cell was cleared (or demoted to a plain value)
                # through a path that does not maintain the dirty set,
                # e.g. Sheet.clear_range.  There is nothing to compute:
                # drop it instead of handing step() a dead position.
                vanished.append(pos)
                continue
            blocked = False
            for ref in cell.references:
                if ref.sheet is not None and ref.sheet != self.sheet.name:
                    continue
                rng = ref.range
                if rng.size <= len(self._dirty):
                    if any(p in self._dirty and p != pos for p in rng.cells()):
                        blocked = True
                        break
                else:
                    if any(rng.contains_cell(*p) and p != pos for p in self._dirty):
                        blocked = True
                        break
            if not blocked:
                ready.append(pos)
                if len(ready) >= limit:
                    break
        for pos in vanished:
            self._dirty.discard(pos)
        return ready
