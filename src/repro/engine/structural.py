"""Workbook-level structural edits: one row/column insert or delete,
end-to-end.

This is the pipeline that makes the compressed formula graph survive the
most destructive edits a host spreadsheet performs (TACO's maintenance
workload).  One :func:`apply_structural_edit` call runs, in order:

1. **Sheet rewrite** — the edited sheet's cells move and its formulas'
   references into itself shift/stretch/collapse
   (:mod:`repro.sheet.structural`); sheet-qualified references into
   *other* sheets are untouched.
2. **Cross-sheet rewrite** — when a :class:`~repro.sheet.workbook.Workbook`
   is supplied, formulas on every sibling sheet that reference the
   edited sheet are rewritten too (:func:`~repro.sheet.structural.rewrite_for_edit`).
3. **Graph maintenance** — the compressed graph is maintained
   incrementally (:mod:`repro.core.structural`) inside one
   deferred-maintenance window: index deletes are queued and settled
   once, with an STR bulk repack when the edit touched a large share of
   the graph (the same policy as batched value edits).
4. **Cache invalidation** — moved or rewritten formulas received fresh
   :class:`~repro.sheet.cell.Cell` objects in step 1/2, so their
   memoised references and R1C1 template keys cannot go stale.
5. **Dirty recalculation** — the dirty set is the edit's seed cells
   (shifted formulas, rewritten formulas, ``#REF!``-struck formulas)
   plus their transitive dependents from one multi-seed BFS over the
   compressed graph; :meth:`~repro.engine.recalc.RecalcEngine.recompute`
   re-evaluates exactly those cells, on the ``evaluation="auto"`` path —
   windowed columns stay super-nodes even after the edit, and on engines
   configured with ``workers=N`` the dirty set is partitioned into
   independent regions and recalculated in parallel
   (:mod:`repro.engine.parallel`) with no change to the result.

Structural edits do not compose with *concurrently buffered* cell edits:
issuing one while a :class:`~repro.engine.batch.BatchEditSession` is open
on the engine, or while the graph is inside a deferred-maintenance
window, raises ``RuntimeError`` instead of silently corrupting buffered
positions (record the structural op *through* the batch instead — see
:meth:`~repro.engine.batch.BatchEditSession.insert_rows`).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, NamedTuple

from ..core import maintain
from ..core import structural as graph_structural
from ..core.query import dependents_of_seeds
from ..core.structural import StructuralMaintenanceStats
from ..core.taco_graph import dependencies_column_major
from ..grid.range import Range
from ..grid.rangeset import merge_ranges
from ..sheet import structural as sheet_structural
from ..sheet.structural import STRUCTURAL_OPS, SheetEditReport, edit_transform

if TYPE_CHECKING:  # pragma: no cover
    from ..sheet.workbook import Workbook
    from .recalc import RecalcEngine

__all__ = ["StructuralEditResult", "apply_structural_edit", "shift_dirty_ranges"]


class StructuralEditResult(NamedTuple):
    """What one structural edit did, and what it cost."""

    op: str                        # insert_rows / delete_rows / insert_columns / delete_columns
    sheet: str                     # name of the edited sheet
    index: int
    count: int
    moved_cells: int               # formula cells relocated on the edited sheet
    rewritten_formulas: int        # formulas whose AST changed (all sheets)
    ref_errors: int                # formulas that gained a #REF! (all sheets)
    cross_sheet_rewrites: int      # rewritten formulas on *other* sheets
    removed_cells: int             # cells deleted with the edited band
    maintenance: StructuralMaintenanceStats  # compressed-graph edge accounting
    repacked: bool                 # True when the indexes were bulk-repacked
    dirty_ranges: list[Range]      # seeds + transitive dependents (post-edit)
    dirty_count: int               # cells in those ranges
    recomputed: int                # formula cells actually re-evaluated
    maintain_seconds: float        # sheet rewrite + graph maintenance
    recalc_seconds: float          # dirty BFS + topological re-evaluation
    total_seconds: float
    #: Per-sibling-sheet rewrite reports (sheet name -> SheetEditReport),
    #: so callers can enumerate cross-sheet formulas whose cached values
    #: are stale until those sheets' own engines recalculate.  ``None``
    #: only when constructed without one (a class-level ``{}`` default
    #: would be one shared mutable dict across instances); the pipeline
    #: always fills it in.
    sibling_reports: "dict | None" = None


def _maintain_graph(
    engine: "RecalcEngine", op: str, index: int, count: int,
    repack_fraction: float, repack_min: int,
) -> tuple[StructuralMaintenanceStats, bool]:
    """Incremental graph maintenance, or a rebuild for graphs without
    compressed-edge storage (NoComp and friends)."""
    graph = engine.graph
    if hasattr(graph, "edges") and hasattr(graph, "add_edge_raw"):
        begin = getattr(graph, "begin_deferred_maintenance", None)
        end = getattr(graph, "end_deferred_maintenance", None)
        repacked = False
        if begin is not None and end is not None:
            begin()
            try:
                stats = getattr(graph_structural, op)(graph, index, count)
            finally:
                repacked = end(repack_fraction, repack_min)
        else:
            stats = getattr(graph_structural, op)(graph, index, count)
        return stats, repacked
    # Uncompressed baselines have no pattern-aware maintenance: rebuild
    # from the already-edited sheet (their build is linear anyway).
    try:
        index_spec = getattr(graph, "index_spec", None)
        fresh = type(graph)() if index_spec is None else type(graph)(index=index_spec)
        fresh.build(dependencies_column_major(engine.sheet))
    except (TypeError, AttributeError, NotImplementedError) as err:
        raise TypeError(
            f"graph backend {type(graph).__name__} supports neither "
            "incremental structural maintenance nor a rebuild from the sheet"
        ) from err
    engine.graph = fresh
    return StructuralMaintenanceStats(0, 0, 0, 0), True


def apply_structural_edit(
    engine: "RecalcEngine",
    op: str,
    index: int,
    count: int = 1,
    *,
    workbook: "Workbook | None" = None,
    repack_fraction: float = 0.25,
    repack_min: int = 64,
    recalc: bool = True,
    journal: bool = True,
) -> StructuralEditResult:
    """Perform one structural edit end-to-end on ``engine``'s sheet.

    ``workbook`` (optional) extends the reference rewrite to every other
    sheet that references the edited one; graph maintenance and
    recalculation stay per-sheet, matching the paper's per-sheet formula
    graphs.  ``recalc=False`` skips the re-evaluation and leaves
    ``dirty_ranges`` for a caller that batches several edits before one
    recompute.  ``journal=False`` suppresses the write-ahead journal
    record (used by batch commits, whose own record covers the op).

    Raises ``RuntimeError`` when a batch session is open on the engine
    or the graph is inside a deferred-maintenance window — buffered cell
    addresses and queued index deletes would silently refer to pre-edit
    coordinates otherwise.
    """
    sheet = engine.sheet
    if op not in STRUCTURAL_OPS:
        raise ValueError(f"unknown structural op {op!r}")
    if getattr(sheet, "_open_batches", None):
        raise RuntimeError(
            "structural edit with an open batch session on this sheet: "
            "buffered cell edits would straddle the shift; commit/discard "
            "the batch first, or record the edit through the batch session"
        )
    if getattr(engine.graph, "_deferred", False):
        raise RuntimeError(
            "structural edit inside a deferred-maintenance window: queued "
            "index deletes refer to pre-edit geometry; settle the window first"
        )
    if workbook is not None and not any(s is sheet for s in workbook.sheets()):
        # Validate *before* mutating: failing halfway through the
        # cross-sheet pass would leave the sheet edited but the graph
        # unmaintained.
        raise ValueError(
            f"engine's sheet {sheet.name!r} is not part of workbook "
            f"{workbook.name!r}"
        )

    start = time.perf_counter()
    report: SheetEditReport = getattr(sheet_structural, op)(sheet, index, count)
    sibling_reports: dict = {}
    if workbook is not None:
        sibling_reports = sheet_structural.rewrite_siblings(
            workbook, sheet, op, index, count
        )
    cross_rewrites = sum(len(r.rewritten) for r in sibling_reports.values())
    cross_struck = sum(len(r.ref_struck) for r in sibling_reports.values())

    # Structural edits reshape every vector a lookaside index was built
    # over; drop the sheet's whole index cache rather than splicing.
    # (Correctness never depends on this — the columnar store's epoch
    # bump already invalidates the entries — but dropping frees them
    # eagerly instead of leaving dead indexes behind the next probes.)
    lookup_cache = getattr(sheet, "_lookup_cache", None)
    if lookup_cache is not None:
        lookup_cache.drop_all()

    # Resident shard replicas hold pre-edit geometry; mark the runtime
    # for a full re-bootstrap (resharding) before its next dispatch.
    shard_rt = getattr(engine, "shard_runtime", None)
    if shard_rt is not None:
        shard_rt.note_structural_change()

    stats, repacked = _maintain_graph(
        engine, op, index, count, repack_fraction, repack_min
    )
    maintain_seconds = time.perf_counter() - start

    # Committed (sheet rewritten, graph maintained): make the op durable
    # before the recalculation tail.
    engine_journal = getattr(engine, "journal", None)
    if journal and engine_journal is not None:
        engine_journal.record_structural(
            sheet.name, op, index, count, cross_sheet=workbook is not None
        )

    recalc_start = time.perf_counter()
    seeds = report.dirty_seeds
    seed_ranges = maintain.coalesce_cells(seeds)
    dirty_ranges = merge_ranges(
        (seed_ranges, dependents_of_seeds(engine.graph, seed_ranges)),
        index=getattr(engine.graph, "index_spec", "rtree"),
    )
    recomputed = 0
    if recalc:
        recomputed = engine.recompute(dirty_ranges)
    recalc_seconds = time.perf_counter() - recalc_start

    return StructuralEditResult(
        op=op,
        sheet=sheet.name,
        index=index,
        count=count,
        moved_cells=len(report.moved),
        rewritten_formulas=len(report.rewritten) + cross_rewrites,
        ref_errors=len(report.ref_struck) + cross_struck,
        cross_sheet_rewrites=cross_rewrites,
        removed_cells=report.removed,
        maintenance=stats,
        repacked=repacked,
        dirty_ranges=dirty_ranges,
        dirty_count=sum(r.size for r in dirty_ranges),
        recomputed=recomputed,
        maintain_seconds=maintain_seconds,
        recalc_seconds=recalc_seconds,
        total_seconds=time.perf_counter() - start,
        sibling_reports=sibling_reports,
    )


def shift_dirty_ranges(ranges: list[Range], op: str, index: int, count: int) -> list[Range]:
    """Map dirty ranges recorded *before* a later structural edit into
    that edit's post-edit coordinates (ranges wholly deleted drop out).

    Used by :class:`~repro.engine.batch.BatchEditSession` when several
    structural ops are committed back to back: op ``k``'s dirty set must
    be re-expressed after op ``k+1`` moves the grid under it.
    """
    transform = edit_transform(op, index, count)
    out: list[Range] = []
    for rng in ranges:
        moved = transform(rng)
        if moved is not None:
            out.append(moved)
    return out
