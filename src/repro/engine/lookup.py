"""Lookaside lookup indexes over the columnar value planes.

``VLOOKUP``/``HLOOKUP``/``MATCH``/``XLOOKUP`` are linear scans in the
function library — O(table) per call, so a column of N lookups against
an M-row table costs O(N*M).  This module gives the engine a per-sheet
cache of **vector indexes**: for a 1-D lookup vector (a table's first
column, a MATCH range) it builds, lazily on first probe,

- a hash map ``(class, normalized value) -> (first offset, last offset)``
  answering exact matches in O(1), and
- per-type-class sorted ``(value, offset)`` lists answering the
  approximate sides (largest entry <= needle / smallest entry >= needle,
  first or last occurrence on ties) by binary search in O(log M).

The index implements *exactly* the class-filtered reference-scan
contract in :mod:`repro.formula.functions` — matching is confined to the
needle's type class, blanks/errors/NaN never match — so on arbitrary
unsorted, mixed-type data the probe is bit-identical to the linear scan
it replaces.

Invalidation is pull-based and piggybacks on the columnar store's write
counters: every index records the store ``epoch`` (bumped by structural
edits / clears / plane installs) and the ``version`` of each backing
column (bumped per content write) at build time, and a probe rebuilds
when either moved.  K buffered writes inside a
:class:`~repro.engine.batch.BatchEditSession` or deferred-maintenance
window bump versions K times but probe nothing until the post-commit
recalculation — so a batch pays **one** rebuild per touched vector, not
one per edit, with no subscription bookkeeping on the write path beyond
an integer increment.

The engine attaches a :class:`LookupProbe` to its resolver
(``SheetResolver.lookup_probe``); interpreter-mode engines and bare
evaluators keep the attribute ``None`` and stay on the reference scan,
which keeps them valid differential oracles.  ``REPRO_LOOKUP_INDEX=0``
disables attachment globally.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left, bisect_right

from ..formula.functions import lookup_entry_key
from ..sheet.columnar import TAG_BOOL, TAG_EMPTY, TAG_NUMBER

__all__ = [
    "MIN_INDEX_SIZE",
    "LookupCache",
    "LookupProbe",
    "VectorIndex",
    "attach_probe",
    "indexes_enabled",
]


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


#: Vectors shorter than this are not worth indexing: the probe's dict
#: and bisect machinery costs about as much as scanning a handful of
#: entries.  Tests monkeypatch this down to exercise the index on tiny
#: corpora.
MIN_INDEX_SIZE = _env_int("REPRO_LOOKUP_MIN_SIZE", 32)

#: Per-sheet cap on cached vector indexes (FIFO eviction) — a runaway
#: workload probing thousands of distinct ranges must not hoard memory.
MAX_CACHED_INDEXES = _env_int("REPRO_LOOKUP_MAX_INDEXES", 256)


def indexes_enabled(flag: "bool | None" = None) -> bool:
    """Resolve the engine's ``lookup_indexes`` setting: an explicit flag
    wins, otherwise the ``REPRO_LOOKUP_INDEX`` env toggle (default on)."""
    if flag is not None:
        return bool(flag)
    return os.environ.get("REPRO_LOOKUP_INDEX", "1").lower() not in ("0", "off", "no")


class VectorIndex:
    """Hash + sorted-list index over one 1-D vector of a columnar store.

    Offsets are 0-based positions along the vector, matching the
    reference scan's enumeration order.  ``find`` mirrors
    ``repro.formula.functions._scan_vector``: ``side`` in ``"eq"``/
    ``"le"``/``"ge"``, ``tie`` in ``"first"``/``"last"``.
    """

    __slots__ = ("_exact", "_sorted", "_hi", "_epoch", "_versions")

    def __init__(self, exact, by_class, length, epoch, versions):
        self._exact = exact
        self._sorted = by_class
        self._hi = length  # offset sentinel: strictly above any real offset
        self._epoch = epoch
        self._versions = versions

    @classmethod
    def build(cls, store, bounds: tuple[int, int, int, int]) -> "VectorIndex":
        c1, r1, c2, r2 = bounds
        exact: dict = {}
        by_class: dict = {}
        if c1 == c2:
            length = r2 - r1 + 1
            versions = ((c1, store.column_version(c1)),)
            entries = cls._column_entries(store, c1, r1, length)
        else:
            length = c2 - c1 + 1
            versions = tuple(
                (col, store.column_version(col)) for col in range(c1, c2 + 1)
            )
            read = store.read_value
            entries = (
                (k, lookup_entry_key(read(c1 + k, r1))) for k in range(length)
            )
        for offset, key in entries:
            if key is None:
                continue
            hit = exact.get(key)
            exact[key] = (offset, offset) if hit is None else (hit[0], offset)
            by_class.setdefault(key[0], []).append((key[1], offset))
        for bucket in by_class.values():
            bucket.sort()
        return cls(exact, by_class, length, store.epoch, versions)

    @staticmethod
    def _column_entries(store, col, r1, length):
        """(offset, entry key) pairs of a column vector, reading the raw
        planes directly and clamping to the column's physical length —
        rows past it are EMPTY, which never match."""
        buffers = store.column_buffers(col)
        if buffers is None:
            return
        values, tags = buffers
        side = store.ensure_column(col, 1).side
        limit = min(length, len(tags) - (r1 - 1))
        for k in range(limit):
            i = r1 - 1 + k
            tag = tags[i]
            if tag == TAG_EMPTY:
                continue
            if tag == TAG_NUMBER:
                value = values[i]
            elif tag == TAG_BOOL:
                value = values[i] != 0.0
            else:
                value = side[i]
            yield k, lookup_entry_key(value)

    def fresh(self, store) -> bool:
        if store.epoch != self._epoch:
            return False
        column_version = store.column_version
        for col, version in self._versions:
            if column_version(col) != version:
                return False
        return True

    def find(self, key, side: str, tie: str) -> "int | None":
        if side == "eq":
            hit = self._exact.get(key)
            if hit is None:
                return None
            return hit[0] if tie == "first" else hit[1]
        cls, norm = key
        entries = self._sorted.get(cls)
        if not entries:
            return None
        if side == "le":
            i = bisect_right(entries, (norm, self._hi))
            if i == 0:
                return None
            if tie == "last":
                return entries[i - 1][1]
            # first offset within the winning value's run
            return entries[bisect_left(entries, (entries[i - 1][0], -1))][1]
        # side == "ge"
        i = bisect_left(entries, (norm, -1))
        if i == len(entries):
            return None
        if tie == "first":
            return entries[i][1]
        return entries[bisect_right(entries, (entries[i][0], self._hi)) - 1][1]


class LookupCache:
    """Per-sheet store of vector indexes, keyed by range bounds.

    Thread-safe build-once: PR 7's thread-pool shadow engines share the
    host sheet (and therefore this cache), so the first prober builds
    under the lock and the rest reuse.  Staleness is impossible even
    under racy version bumps — versions are monotonic, so any write
    concurrent with a build leaves the recorded stamp behind the
    column's, and the next probe rebuilds.
    """

    __slots__ = ("_indexes", "_lock")

    def __init__(self) -> None:
        self._indexes: dict = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._indexes)

    def get_or_build(self, store, bounds) -> tuple[VectorIndex, bool]:
        index = self._indexes.get(bounds)
        if index is not None and index.fresh(store):
            return index, False
        with self._lock:
            index = self._indexes.get(bounds)
            if index is not None and index.fresh(store):
                return index, False
            while len(self._indexes) >= MAX_CACHED_INDEXES:
                self._indexes.pop(next(iter(self._indexes)))
            index = VectorIndex.build(store, bounds)
            self._indexes[bounds] = index
        return index, True

    def drop_all(self) -> None:
        with self._lock:
            self._indexes.clear()


class LookupProbe:
    """The resolver-side hook the lookup builtins duck-type for.

    ``probe(sheet_name, c1, r1, c2, r2)`` returns a fresh
    :class:`VectorIndex` for that vector, or None when the vector does
    not qualify (foreign sheet, below the size floor) — in which case
    the caller falls back to the reference linear scan.  Each served
    probe counts one ``lookup_index_hits``; hits are deterministic
    (eligibility depends only on geometry), so the PR 7 counter-snapshot
    identity across serial/thread/process execution extends to them.
    Builds are environment-dependent (process workers rebuild privately)
    and tracked outside the identity set, like ``serial_fallbacks``.
    """

    __slots__ = ("_sheet_name", "_store", "_cache", "_stats")

    def __init__(self, sheet, stats):
        self._sheet_name = sheet.name
        self._store = sheet._cells
        self._cache = _sheet_cache(sheet)
        self._stats = stats

    def __call__(self, sheet_name, c1, r1, c2, r2):
        if sheet_name is not None and sheet_name != self._sheet_name:
            return None
        if c1 == c2:
            length = r2 - r1 + 1
        elif r1 == r2:
            length = c2 - c1 + 1
        else:
            return None
        if length < MIN_INDEX_SIZE:
            return None
        index, built = self._cache.get_or_build(self._store, (c1, r1, c2, r2))
        stats = self._stats
        stats.lookup_index_hits += 1
        if built:
            stats.lookup_index_builds += 1
        return index


def _sheet_cache(sheet) -> LookupCache:
    cache = getattr(sheet, "_lookup_cache", None)
    if cache is None:
        cache = sheet._lookup_cache = LookupCache()
    return cache


def attach_probe(cell_evaluator, sheet) -> None:
    """Arm ``cell_evaluator``'s resolver with a lookaside probe.

    Columnar sheets only — the object store has no write counters, so it
    stays on the (identical-by-contract) linear scan and doubles as the
    differential oracle.  The evaluator's interpreter shares the same
    resolver object, so both evaluation tiers of one engine see the
    probe.
    """
    if getattr(sheet, "store_kind", None) != "columnar":
        return
    cell_evaluator.resolver.lookup_probe = LookupProbe(sheet, cell_evaluator.stats)
