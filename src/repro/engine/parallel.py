"""Partitioned parallel recalculation over the compressed formula graph.

The compressed graph makes region discovery nearly free: the spatial
index plus the compressed RR/FR dependent ranges already expose where
the dirty subgraph is independent.  This module schedules those
independent *regions* across a worker pool while keeping the result —
values, errors, and :class:`~repro.formula.compile.EvalStats` cell
counters — bit-identical to single-threaded auto mode.

Partitioning happens at the *plan* level, not the cell level.  The
serial engine already orders the dirty set as super-nodes (windowed /
elementwise runs) plus singles, with a successor adjacency built from
compressed-edge probes (:meth:`RecalcEngine._order_with_runs`).  A
union-find over that adjacency yields the weakly-connected components of
the super-node DAG.  Invariants:

* regions are pairwise disjoint sets of plan nodes;
* their union is exactly the plan (every dirty formula cell is in
  exactly one region);
* a run super-node is never split across regions — it travels whole, so
  the rolling/sweep evaluators see the same stretches as serial mode.

Any dependency between two dirty cells would have produced a successor
edge and merged their regions, so distinct regions share no edges at
all: the only synchronization boundary is the join at the end of the
dispatch wave, and each region may execute the serial engine's plan
order restricted to its own nodes — which is a valid topological order
of the induced subgraph.  Values are therefore identical by
construction, and the per-region stats counters sum to the serial
totals because every plan node is executed exactly once, by exactly one
engine, through the same tier dispatch.

Two pool flavours (``concurrent.futures``):

* ``thread`` (default) — shadow engines share the live sheet; columnar
  columns the plan writes are pre-grown so no worker ever reallocates a
  plane another worker holds a buffer view of.
* ``process`` — the sheet's value planes ship to the worker as bytes
  (:meth:`ColumnarStore.export_planes`), region member formulas ship as
  pickled ASTs, and typed result columns come back
  (:meth:`ColumnarStore.pack_result_columns`).  This is the flavour that
  clears real multi-core speedups on interpreter-heavy corpora.

Every failure mode — a worker dying mid-region, a result that fails to
unpickle, a payload that cannot be pickled, a cycle in the dirty set —
falls back to serial re-execution of the affected region(s) in the
parent (idempotent: regions own disjoint cells) and is reported in
``EvalStats.serial_fallbacks`` / ``fallback_reason`` rather than
silently absorbed.
"""

from __future__ import annotations

import atexit
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .recalc import RecalcEngine

__all__ = ["ParallelRecalc", "coarsen_regions", "partition_plan",
           "preview_regions", "shutdown_pools"]

#: Fault-injection hook for the fallback tests: ``"die"`` kills the
#: worker at region start (thread workers raise, process workers hard
#: -exit), ``"garbage"`` makes process workers return unpicklable bytes.
#: Read inside the worker so it propagates under fork and spawn alike.
FAULT_ENV = "REPRO_PARALLEL_FAULT"

_DEFAULT_MIN_DIRTY = 64


# -- plan partitioning ---------------------------------------------------------


def partition_plan(plan, succs) -> list[list[object]]:
    """Split an ordered plan into weakly-connected regions.

    ``succs`` is the successor adjacency the topological sort was built
    from; union-find over its edges groups the plan nodes into
    components.  Each returned region preserves the plan's order, so it
    is a valid topological order of the induced subgraph, and regions
    are returned in order of their earliest plan node (deterministic).
    """
    if not succs:
        # Fully independent plan (the common shape for scattered
        # per-cell formulas over pure-value inputs): every node is its
        # own region, no union-find bookkeeping needed.
        return [[node] for node in plan]
    # Only nodes an edge touches can share a region; the rest are
    # singletons.  Restricting the union-find to touched nodes keeps the
    # partition O(E α(E) + D) instead of paying per-node dict costs for
    # dirty sets whose adjacency is sparse.  Singles are (col, row)
    # tuples — equal by value, so the index keys by the node itself
    # (succs re-creates equal tuples), matching the hashing
    # `_order_with_runs` used to build the adjacency.
    touched: dict[object, int] = {}
    for node, targets in succs.items():
        if targets and node not in touched:
            touched[node] = len(touched)
        for target in targets:
            if target not in touched:
                touched[target] = len(touched)
    parent = list(range(len(touched)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for node, targets in succs.items():
        if not targets:
            continue
        ri = find(touched[node])
        for target in targets:
            rj = find(touched[target])
            if ri != rj:
                if rj < ri:
                    ri, rj = rj, ri
                parent[rj] = ri
    regions: dict[int, list[object]] = {}
    out: list[list[object]] = []
    for i, node in enumerate(plan):
        t = touched.get(node)
        if t is None:
            out.append([node])
            continue
        root = find(t)
        region = regions.get(root)
        if region is None:
            region = regions[root] = []
            out.append(region)
        region.append(node)
    return out


def coarsen_regions(regions, buckets: int) -> list[list[object]]:
    """Pack many small regions into at most ``buckets`` dispatch units.

    A fine partition (thousands of independent singles) would pay one
    future — and in process mode one plane payload — per region.  Since
    regions share no edges, any concatenation of whole regions is still
    a valid execution order, so greedy least-loaded packing (weights =
    cell counts; ties to the lowest bucket, regions visited in plan
    order) balances the pool deterministically: the same partition
    always yields the same buckets, keeping runs reproducible.
    """
    if len(regions) <= buckets:
        return regions
    weights = [
        sum(1 if type(n) is tuple else len(n.rows) for n in region)
        for region in regions
    ]
    if len(regions) > 4 * buckets:
        # Many small regions: cut the region sequence at cumulative
        # cell-count boundaries.  O(regions), and packing whole regions
        # in plan order keeps each bucket a valid execution order.
        total = sum(weights)
        bins = []
        current: list[object] = []
        acc = 0
        boundary = total / buckets
        for region, weight in zip(regions, weights):
            current.extend(region)
            acc += weight
            if acc >= boundary * (len(bins) + 1) and len(bins) < buckets - 1:
                bins.append(current)
                current = []
        if current:
            bins.append(current)
        return bins
    # Few, lumpy regions: greedy least-loaded packing balances better
    # (weights = cell counts; ties to the lowest bucket index).
    bins = [[] for _ in range(buckets)]
    loads = [0] * buckets
    for region, weight in zip(regions, weights):
        i = loads.index(min(loads))
        bins[i].extend(region)
        loads[i] += weight
    return [b for b in bins if b]


def preview_regions(engine: "RecalcEngine", dirty_ranges) -> list[list]:
    """The independent dependent-groups a dirty set splits into.

    A read-only probe over the compressed graph
    (:func:`repro.core.query.find_dependents_multi_grouped`): one BFS,
    grouping seeds whose dependent frontiers touch.  Useful for sizing a
    worker pool before committing to a recalculation; the execution-time
    partition (:func:`partition_plan`) is computed exactly, at the plan
    level, and may split finer than this conservative preview.
    """
    from ..core.query import find_dependents_multi_grouped

    return find_dependents_multi_grouped(engine.graph, list(dirty_ranges))


# -- worker pools --------------------------------------------------------------

_POOLS: dict[tuple[str, int], object] = {}


def _pool(mode: str, workers: int):
    key = (mode, workers)
    pool = _POOLS.get(key)
    if pool is None:
        if mode == "process":
            pool = ProcessPoolExecutor(max_workers=workers)
        else:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-recalc"
            )
        _POOLS[key] = pool
    return pool


def _discard_pool(mode: str, workers: int) -> None:
    pool = _POOLS.pop((mode, workers), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut down and forget every cached worker pool.

    Covers the ``(mode, workers)`` thread/process pools here *and* the
    persistent shard slot pools (:mod:`repro.engine.shard`).  The cache
    otherwise only grows — each distinct ``worker_mode`` / worker-count
    combination leaves a live pool behind — so long-lived hosts (the CLI,
    servers, test harnesses) call this at teardown.  Safe to call twice;
    the next recalculation simply builds fresh pools on demand.
    """
    for pool in list(_POOLS.values()):
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()
    from .shard import shutdown_slot_pools

    shutdown_slot_pools()


atexit.register(shutdown_pools)


# -- the scheduler -------------------------------------------------------------


class ParallelRecalc:
    """Region scheduler attached to a :class:`RecalcEngine` (auto mode).

    ``mode`` is ``"thread"`` (default; ``REPRO_RECALC_WORKER_MODE``) or
    ``"process"``; ``min_dirty`` (``REPRO_PARALLEL_MIN_DIRTY``) keeps
    small recalculations on the serial path where dispatch overhead
    would dominate.
    """

    __slots__ = ("workers", "mode", "min_dirty")

    def __init__(self, workers: int, *, mode: str | None = None,
                 min_dirty: int | None = None):
        if mode is None:
            mode = os.environ.get("REPRO_RECALC_WORKER_MODE", "thread")
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown worker mode {mode!r}")
        if min_dirty is None:
            min_dirty = int(
                os.environ.get("REPRO_PARALLEL_MIN_DIRTY", "")
                or _DEFAULT_MIN_DIRTY
            )
        self.workers = int(workers)
        self.mode = mode
        self.min_dirty = int(min_dirty)

    def eligible(self, dirty_count: int) -> bool:
        return dirty_count >= self.min_dirty

    def execute(self, engine: "RecalcEngine", plan, succs) -> int | None:
        """Run ``plan`` region-parallel; None → caller runs it serially.

        Returning None is *not* a fallback (the plan is simply one
        region, or there is nothing to gain); genuine fallbacks re-run
        the failed region in the parent and bump ``serial_fallbacks``.
        """
        regions = partition_plan(plan, succs)
        engine.eval_stats.parallel_regions += len(regions)
        if len(regions) < 2:
            return None
        regions = coarsen_regions(regions, self.workers * 2)
        if self.mode == "process":
            return self._execute_process(engine, regions)
        return self._execute_thread(engine, regions)

    # -- thread flavour --------------------------------------------------------

    def _execute_thread(self, engine: "RecalcEngine", regions) -> int:
        from .recalc import RecalcEngine

        stats = engine.eval_stats
        _pregrow_written_columns(engine.sheet, regions)
        pool = _pool("thread", self.workers)
        registry = engine.cell_evaluator.registry
        pending = []
        for region in regions:
            shadow = RecalcEngine.plan_executor(engine.sheet, registry=registry)
            pending.append(
                (region, shadow, pool.submit(_thread_region, shadow, region))
            )
        total = 0
        for region, shadow, future in pending:
            try:
                count = future.result()
            except BaseException:
                # The worker died mid-region.  Its partial writes are
                # overwritten by re-executing the whole region here (the
                # plan order is idempotent), and its partial stats are
                # discarded, so the merged counters still sum to the
                # serial totals.
                stats.serial_fallbacks += 1
                stats.fallback_reason = "worker-died"
                total += engine._execute_plan(region)
                continue
            stats.absorb_counters(shadow.eval_stats.counter_snapshot())
            stats.parallel_dispatches += 1
            total += count
        return total

    # -- process flavour -------------------------------------------------------

    def _execute_process(self, engine: "RecalcEngine", regions) -> int:
        stats = engine.eval_stats
        sheet = engine.sheet
        store = sheet._cells
        store_kind = getattr(sheet, "store_kind", "object")
        if store_kind != "columnar":
            # Bucket the object store's cells by column once; each
            # region's cargo is then the concatenation of the columns it
            # reads.
            by_col: dict[int, list] = {}
            for pos in sheet.positions():
                by_col.setdefault(pos[0], []).append((pos, sheet.get_value(pos)))

        payloads: list[tuple[bytes | None, str | None]] = []
        for region in regions:
            try:
                formulas, spec, read_cols = _declarative_region(sheet, region)
            except _CrossSheetRegion:
                # The worker's rebuilt sheet has no sibling sheets to
                # resolve against; this region must stay in the parent.
                payloads.append((None, "cross-sheet"))
                continue
            if store_kind == "columnar":
                cargo = store.export_planes(read_cols)
            elif read_cols is None:
                cargo = [item for items in by_col.values() for item in items]
            else:
                cargo = [
                    item for col in sorted(read_cols)
                    for item in by_col.get(col, ())
                ]
            try:
                payloads.append((pickle.dumps(
                    (store_kind, sheet.name, cargo, formulas, spec),
                    pickle.HIGHEST_PROTOCOL,
                ), None))
            except Exception:
                payloads.append((None, "payload-pickle-failed"))

        pool = _pool("process", self.workers)
        pending: list[tuple[object, object, str | None]] = []
        for region, (payload, why) in zip(regions, payloads):
            if payload is None:
                pending.append((region, None, why))
                continue
            try:
                future = pool.submit(_region_worker, payload)
            except BrokenProcessPool:
                _discard_pool("process", self.workers)
                pool = _pool("process", self.workers)
                future = pool.submit(_region_worker, payload)
            pending.append((region, future, None))

        total = 0
        for region, future, reason in pending:
            if future is not None:
                reason, merged = self._merge_process_result(engine, future)
                if reason is None:
                    total += merged
                    continue
            stats.serial_fallbacks += 1
            stats.fallback_reason = reason
            total += engine._execute_plan(region)
        return total

    def _merge_process_result(self, engine: "RecalcEngine", future):
        """Returns ``(None, count)`` on success, ``(reason, 0)`` otherwise."""
        stats = engine.eval_stats
        try:
            raw = future.result()
        except BrokenProcessPool:
            _discard_pool("process", self.workers)
            return "worker-died", 0
        except BaseException:
            return "worker-died", 0
        try:
            (kind, packed), counters, count = pickle.loads(raw)
        except Exception:
            return "unpickle-failed", 0
        sheet = engine.sheet
        if kind == "columnar":
            sheet._cells.merge_result_columns(packed)
        else:
            for pos, value in packed:
                sheet.formula_at(pos).value = value
        stats.absorb_counters(counters)
        stats.parallel_dispatches += 1
        return None, count


class _CrossSheetRegion(Exception):
    """A region member references another sheet: unshippable to a
    process worker (the rebuilt sheet is alone in its process)."""


# -- worker-side helpers -------------------------------------------------------


def _thread_region(shadow: "RecalcEngine", region) -> int:
    if os.environ.get(FAULT_ENV) == "die":
        raise RuntimeError("injected worker death (REPRO_PARALLEL_FAULT=die)")
    return shadow._execute_plan(region)


def _pregrow_written_columns(sheet, regions) -> None:
    """Grow every columnar column the plan writes to its final extent.

    Thread workers write concurrently through ``_write_raw`` /
    ``frombuffer`` views; pre-growing here means no worker's write ever
    reallocates an array plane (or resizes a buffer-exported bytearray)
    that another worker is reading through.
    """
    store = sheet._cells
    ensure = getattr(store, "ensure_column", None)
    if ensure is None:
        return
    peaks: dict[int, int] = {}
    for region in regions:
        for node in region:
            if type(node) is tuple:
                col, row = node
            else:
                col, row = node.col, node.rows[-1]
            if row > peaks.get(col, 0):
                peaks[col] = row
    for col, row in peaks.items():
        ensure(col, row)


def _declarative_region(sheet, region):
    """A region as compact picklable freight: an ordered declarative plan
    plus the member formulas grouped into *template families*.

    Plan nodes become ``("c", col, row)`` singles, ``("w", col, r0, r1)``
    windowed runs and ``("e", col, r0, r1)`` elementwise runs (run rows
    are ascending and consecutive by construction).  Formulas do not ship
    per cell: members sharing an R1C1 template key ship as one family —
    ``(host, key, exemplar_ast, positions)`` — and the worker re-derives
    each member's AST by shifting the exemplar, exactly like autofill
    created it (equal template keys *mean* the shifted exemplar is the
    member's formula).  The key rides along so the worker can seed every
    member's memo instead of re-rendering R1C1 text per cell.  Only
    keyless members (un-normalizable formulas) ship their own AST.  This
    is the same compression insight the graph layer exploits: a 10k-cell
    autofill family is one pickled AST plus a position list, not 10k
    ASTs.

    Alongside the freight it returns the region's *read columns* — the
    union of its members' reference column spans — so the caller ships
    only those value planes (None = a span was too wide to enumerate;
    ship everything).  Raises :class:`_CrossSheetRegion` when a member
    references a sibling sheet, which a process worker cannot resolve.
    """
    from .recalc import _TemplateRun

    spec = []
    families: dict[str, tuple] = {}
    loose = []
    formula_at = sheet.formula_at
    sheet_name = sheet.name
    spans: set[tuple[int, int]] = set()

    def enroll(pos) -> None:
        cell = formula_at(pos)
        for ref in cell.references:
            if ref.sheet is not None and ref.sheet != sheet_name:
                raise _CrossSheetRegion
            spans.add((ref.range.c1, ref.range.c2))
        key = cell.template_key(*pos)
        if not key:
            loose.append((pos, cell.formula_ast))
            return
        family = families.get(key)
        if family is None:
            families[key] = (pos, key, cell.formula_ast, [pos])
        else:
            family[3].append(pos)

    for node in region:
        if type(node) is tuple:
            spec.append(("c", node[0], node[1]))
            enroll(node)
            continue
        kind = "w" if type(node) is _TemplateRun else "e"
        spec.append((kind, node.col, node.rows[0], node.rows[-1]))
        for row in node.rows:
            enroll((node.col, row))

    read_cols: set[int] | None = set()
    for c1, c2 in spans:
        if c2 - c1 > 4096:  # whole-row-style span: cheaper to ship all
            read_cols = None
            break
        read_cols.update(range(c1, c2 + 1))
    return (list(families.values()), loose), spec, read_cols


def _rebuild_worker_sheet(store_kind, name, cargo, families, loose):
    """Reconstruct a shipped sheet inside a worker process.

    Installs the value planes (columnar) or cell list (object) and the
    member formulas: family members re-derive their ASTs by shifting the
    exemplar — equal template keys *mean* the shifted exemplar is the
    member's formula — and the key seeds each cell's memo so the worker
    never re-renders R1C1 text.  Returns ``(sheet, positions)`` with the
    member positions in enrolment order.  Shared by the region worker
    here and the scenario worker (:mod:`repro.engine.scenario`).
    """
    from ..sheet.sheet import Sheet

    sheet = Sheet(name, store=store_kind)
    if store_kind == "columnar":
        sheet._cells.install_planes(cargo)
    else:
        for pos, value in cargo:
            sheet.set_value(pos, value)
    set_formula_ast = sheet.set_formula_ast
    formula_at = sheet.formula_at
    positions = []
    for (host_col, host_row), key, exemplar, family_positions in families:
        for pos in family_positions:
            if pos == (host_col, host_row):
                set_formula_ast(pos, exemplar)
            else:
                set_formula_ast(
                    pos, exemplar.shifted(pos[0] - host_col, pos[1] - host_row)
                )
            # Every family member renders to the same R1C1 text — that is
            # what made it a family — so seed the memo and skip the
            # per-cell render the parent already paid for once.
            formula_at(pos)._template_key = key
        positions.extend(family_positions)
    for pos, ast in loose:
        set_formula_ast(pos, ast)
        positions.append(pos)
    return sheet, positions


def _plan_from_spec(engine, sheet, spec):
    """Materialise a declarative plan spec back into executable nodes.

    ``("c", col, row)`` singles become position tuples; ``("w", ...)`` /
    ``("e", ...)`` stretches recompile their template from the first
    member (the registry memoises, so this is one lookup per run) and
    become run super-nodes with empty blocker sets — ordering was
    resolved by the parent, the spec's sequence *is* the plan order.
    """
    from .recalc import _ElementwiseRun, _TemplateRun

    plan: list[object] = []
    for node in spec:
        if node[0] == "c":
            plan.append((node[1], node[2]))
            continue
        kind, col, r0, r1 = node
        rows = list(range(r0, r1 + 1))
        cell = sheet.formula_at((col, r0))
        template = engine.cell_evaluator.template_for_cell(cell, col, r0)
        if template is None:            # pragma: no cover - planner compiled it
            plan.extend((col, row) for row in rows)
        elif kind == "w":
            plan.append(_TemplateRun(template.window, col, rows, set(), set()))
        else:
            plan.append(_ElementwiseRun(template, col, rows, set(), set()))
    return plan


def _region_worker(payload: bytes) -> bytes:
    """Evaluate one shipped region in a worker process.

    Rebuilds a same-name, same-store-kind sheet from the shipped value
    planes, installs the member formulas (pre-parsed ASTs), re-creates
    the run super-nodes, executes the plan through a graph-less shadow
    engine, and returns ``((kind, packed_results), stats_counters,
    count)`` as bytes.  The same store kind and sheet name guarantee the
    worker's tier dispatch — and therefore its values *and* stats — match
    what the parent would have computed serially.
    """
    fault = os.environ.get(FAULT_ENV)
    if fault == "die":
        os._exit(11)
    from .recalc import RecalcEngine

    store_kind, name, cargo, (families, loose), spec = pickle.loads(payload)
    sheet, positions = _rebuild_worker_sheet(store_kind, name, cargo, families, loose)
    engine = RecalcEngine.plan_executor(sheet)
    plan = _plan_from_spec(engine, sheet, spec)
    count = engine._execute_plan(plan)
    if fault == "garbage":
        return b"\x00 injected unpicklable worker result"
    if store_kind == "columnar":
        results = ("columnar", sheet._cells.pack_result_columns(positions))
    else:
        results = (
            "object",
            [(pos, sheet.formula_at(pos).value) for pos in positions],
        )
    return pickle.dumps(
        (results, engine.eval_stats.counter_snapshot(), count),
        pickle.HIGHEST_PROTOCOL,
    )
