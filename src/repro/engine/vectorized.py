"""Windowed-aggregate evaluation of same-template runs.

The compressed graph already knows that a running-total column is *one*
RR/FR edge whose dependent range is the whole run; this module makes
recalculation cost follow that structure.  Given a run of formula cells
in one column that share a windowed-aggregate template
(:class:`~repro.formula.compile.WindowSpec` — the whole formula is
``AGG(range)`` with the range sliding or growing along the run), the run
is evaluated with rolling aggregates:

====================  ==========================  =====================
window rows           shape                       total cost
====================  ==========================  =====================
fixed .. fixed        constant window              O(window + run)
fixed .. relative     growing prefix               O(window + run)
relative .. fixed     shrinking suffix             O(window + run)
relative .. relative  sliding window               O(window + run)
====================  ==========================  =====================

versus ``O(run x window)`` for per-cell evaluation — the difference
between quadratic and linear on the paper's running-total workloads.

Exactness: SUM/AVERAGE accumulate through
:class:`~repro.formula.numeric.ExactSum`, so every emitted value is
bit-identical to ``math.fsum`` over that cell's window — the same value
the interpreter computes.  MIN/MAX use running extrema (growing) or a
monotonic deque (sliding); COUNT is integer arithmetic.  Cells whose
window contains an error value are delegated back to the per-cell
``fallback`` callable, which preserves the interpreter's
iteration-order-dependent choice of *which* error propagates.

The caller (:meth:`repro.engine.recalc.RecalcEngine._dispatch_runs`) is
responsible for run *safety* — window rows may only touch cells that are
clean or already-evaluated run members; this module only checks
geometry.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

try:  # numpy is optional: without it elementwise sweeps just decline.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

from ..formula.compile import CompiledTemplate, WindowSpec
from ..formula.errors import DIV0, ExcelError
from ..formula.numeric import ExactSum
from ..sheet.columnar import (
    TAG_BOOL,
    TAG_EMPTY,
    TAG_NUMBER,
    ColumnarStore,
)
from ..sheet.sheet import Sheet

__all__ = [
    "MIN_RUN",
    "evaluate_elementwise_run",
    "evaluate_run",
    "window_rows_at",
    "window_cols",
]

#: Shortest run worth dispatching to the rolling evaluator; shorter runs
#: go through the compiled per-cell closure, whose constant factor wins.
MIN_RUN = 8


def window_cols(spec: WindowSpec, col: int) -> tuple[int, int] | None:
    """The window's column span for a host in column ``col`` (normalised)."""
    c1 = spec.head_col.at(col)
    c2 = spec.tail_col.at(col)
    if c1 > c2:
        c1, c2 = c2, c1
    if c1 < 1:
        return None
    return c1, c2


def window_rows_at(spec: WindowSpec, row: int) -> tuple[int, int]:
    """The window's raw row span for a host in row ``row`` (unnormalised)."""
    return spec.head_row.at(row), spec.tail_row.at(row)


class _WindowState:
    """Rolling aggregate state over the rows currently in the window."""

    __slots__ = ("func", "cols", "sheet", "acc", "count", "errors", "best",
                 "row_log", "monotonic", "keep_log")

    def __init__(self, func: str, cols: tuple[int, int], sheet: Sheet, keep_log: bool):
        self.func = func
        self.cols = cols
        self.sheet = sheet
        self.acc = ExactSum()
        self.count = 0
        self.errors = 0
        self.best: float | None = None       # running extremum (grow-only)
        # Sliding windows must be able to *remove* a row exactly as it
        # was added, so each entered row is logged: (row, numbers, errors).
        self.keep_log = keep_log
        self.row_log: deque[tuple[int, tuple[float, ...], int]] = deque()
        # (row, row_extremum) candidates for sliding MIN/MAX.
        self.monotonic: deque[tuple[int, float]] = deque()

    def add_row(self, row: int) -> None:
        c1, c2 = self.cols
        raw_value = self.sheet.raw_value
        numbers: list[float] = []
        errors = 0
        for col in range(c1, c2 + 1):
            value = raw_value(col, row)
            if value is None or value is True or value is False:
                continue
            if isinstance(value, (int, float)):
                numbers.append(float(value))
            elif isinstance(value, ExcelError):
                errors += 1
        self.errors += errors
        self.count += len(numbers)
        func = self.func
        if func in ("SUM", "AVERAGE"):
            for x in numbers:
                self.acc.add(x)
        elif func == "MIN":
            if numbers:
                low = min(numbers)
                self.best = low if self.best is None or low < self.best else self.best
                monotonic = self.monotonic
                while monotonic and monotonic[-1][1] >= low:
                    monotonic.pop()
                monotonic.append((row, low))
        elif func == "MAX":
            if numbers:
                high = max(numbers)
                self.best = high if self.best is None or high > self.best else self.best
                monotonic = self.monotonic
                while monotonic and monotonic[-1][1] <= high:
                    monotonic.pop()
                monotonic.append((row, high))
        if self.keep_log:
            self.row_log.append((row, tuple(numbers), errors))

    def drop_rows_below(self, low: int) -> None:
        """Expire logged rows with ``row < low`` (sliding windows only)."""
        row_log = self.row_log
        while row_log and row_log[0][0] < low:
            _, numbers, errors = row_log.popleft()
            self.errors -= errors
            self.count -= len(numbers)
            if self.func in ("SUM", "AVERAGE"):
                for x in numbers:
                    self.acc.subtract(x)
        monotonic = self.monotonic
        while monotonic and monotonic[0][0] < low:
            monotonic.popleft()

    def value(self):
        """The aggregate of the current window, interpreter-identical."""
        func = self.func
        if func == "SUM":
            return self.acc.value()
        if func == "COUNT":
            return float(self.count)
        if func == "AVERAGE":
            if self.count == 0:
                return DIV0
            return self.acc.value() / self.count
        if self.count == 0:  # MIN/MAX over an empty window
            return 0.0
        if self.keep_log:
            return self.monotonic[0][1]
        return self.best


def evaluate_run(
    sheet: Sheet,
    spec: WindowSpec,
    col: int,
    rows: list[int],
    fallback: Callable[[tuple[int, int]], None],
) -> int | None:
    """Evaluate ``rows`` of ``col`` (ascending, consecutive) under ``spec``.

    Writes each cell's value as soon as it is computed, so
    self-referential prefix runs (``SUM(B$1:B1)`` filled down B) read
    fresh values for run members already emitted.  Returns the number of
    cells the rolling path itself computed — cells delegated to
    ``fallback`` (error-bearing windows) are *not* counted, the fallback
    accounts for those — or ``None`` when the geometry is not rollable
    (the caller then evaluates every cell through the fallback).
    """
    cols = window_cols(spec, col)
    if cols is None:
        return None
    first, last = rows[0], rows[-1]
    lo_first, hi_first = window_rows_at(spec, first)
    lo_last, hi_last = window_rows_at(spec, last)
    # Reject windows that would need corner normalisation anywhere along
    # the run, and windows falling off the sheet top.
    if lo_first > hi_first or lo_last > hi_last or min(lo_first, lo_last) < 1:
        return None

    head_fixed = spec.head_row.fixed
    tail_fixed = spec.tail_row.fixed
    if head_fixed and tail_fixed:
        return _run_constant(sheet, spec, col, rows, fallback, cols)
    if not head_fixed and not tail_fixed:
        return _run_sliding(sheet, spec, col, rows, fallback, cols)
    if head_fixed:
        ordered = rows                      # growing prefix: top down
    else:
        ordered = rows[::-1]                # shrinking suffix: bottom up
    return _run_growing(sheet, spec, col, ordered, fallback, cols)


def _emit(sheet: Sheet, col: int, row: int, state: _WindowState, fallback) -> int:
    """Write the cell; returns 1 when the rolling value was used, 0 when
    the cell was delegated (the fallback does its own accounting)."""
    if state.errors:
        # The interpreter's error choice depends on range iteration
        # order; delegate the cell rather than guessing.
        fallback((col, row))
        return 0
    sheet.cell_at((col, row)).value = state.value()
    return 1


def _run_constant(sheet, spec, col, rows, fallback, cols) -> int:
    lo, hi = window_rows_at(spec, rows[0])
    state = _WindowState(spec.func, cols, sheet, keep_log=False)
    for rr in range(lo, hi + 1):
        state.add_row(rr)
    if state.errors:
        for row in rows:
            fallback((col, row))
        return 0
    value = state.value()
    for row in rows:
        sheet.cell_at((col, row)).value = value
    return len(rows)


def _run_growing(sheet, spec, col, ordered, fallback, cols) -> int:
    """Grow-only windows: one end fixed, rows only ever enter.

    ``ordered`` is arranged so the window of each successive cell is a
    superset of the previous one (ascending for a fixed head, descending
    for a fixed tail).  An error that has entered never leaves, so once
    seen, the remaining cells delegate to the fallback.
    """
    state = _WindowState(spec.func, cols, sheet, keep_log=False)
    added_lo: int | None = None
    added_hi: int | None = None
    rolled = 0
    for row in ordered:
        lo, hi = window_rows_at(spec, row)
        if added_lo is None:
            span = range(lo, hi + 1)
        elif lo < added_lo:                 # fixed tail: grow upward
            span = range(added_lo - 1, lo - 1, -1)
        else:                               # fixed head: grow downward
            span = range(added_hi + 1, hi + 1)
        for rr in span:
            state.add_row(rr)
        added_lo = lo if added_lo is None else min(added_lo, lo)
        added_hi = hi if added_hi is None else max(added_hi, hi)
        rolled += _emit(sheet, col, row, state, fallback)
    return rolled


# ---------------------------------------------------------------------------
# elementwise array sweeps


def _sweep(node, operands, mask):
    """Evaluate one :class:`~repro.formula.compile.ElementwiseIR` node
    over numpy lanes, mirroring the compiled closure operation for
    operation (same IEEE-754 ops, same order) so unmasked lanes are
    bit-identical to per-cell evaluation — the IR subset is restricted to
    the four correctly-rounded basic operations for exactly this reason.
    ``mask`` accumulates lanes that must be delegated: ``/0`` lanes (the
    closure returns #DIV/0! where the array division would emit inf).
    """
    op = node[0]
    if op == "const":
        return node[1]
    if op == "ref":
        return operands[node[1]]
    if op == "neg":
        return -_sweep(node[1], operands, mask)
    if op == "pct":
        return _sweep(node[1], operands, mask) / 100.0
    left = _sweep(node[1], operands, mask)
    right = _sweep(node[2], operands, mask)
    if op == "add":
        return left + right
    if op == "sub":
        return left - right
    if op == "mul":
        return left * right
    mask |= (right == 0.0)          # div: the only remaining operator
    return left / right


def evaluate_elementwise_run(
    sheet: Sheet,
    template: CompiledTemplate,
    col: int,
    rows: list[int],
    fallback: Callable[[tuple[int, int]], None],
) -> int | None:
    """Evaluate a consecutive same-template run as one numpy array sweep.

    ``rows`` must be ascending and consecutive, and ``template.elementwise``
    non-None.  Reads go straight to the columnar store's buffers
    (zero-copy ``frombuffer`` views); results land in the run column's
    arrays as one masked write.  Lanes whose inputs are not
    empty/number/bool (string coercion, error propagation), whose
    denominators are zero, or whose
    relative reference falls off the sheet top are delegated to
    ``fallback`` — exactly the cases where per-cell semantics are not
    plain float arithmetic.  The caller is responsible for run *safety*
    (no reference may resolve into the run itself; see
    ``RecalcEngine._make_elementwise_run``).

    Returns the number of cells the sweep wrote, or ``None`` when the
    sweep cannot run at all (no numpy, non-columnar store, a scalar
    input that is a string/error, a reference off the sheet's left edge)
    — the caller then evaluates every cell through the fallback.
    """
    if _np is None:
        return None
    store = sheet._cells
    if type(store) is not ColumnarStore:
        return None
    first, last = rows[0], rows[-1]
    n = last - first + 1
    mask = _np.zeros(n, dtype=bool)
    operands: list[object] = []
    for col_axis, row_axis in template.elementwise.refs:
        c = col_axis.at(col)
        if c < 1:
            return None                  # #REF! on every lane
        if row_axis.fixed:
            if row_axis.value < 1:
                return None              # #REF! on every lane
            value = store.read_value(c, row_axis.value)
            if value is None:
                operands.append(0.0)
            elif value is True or value is False:
                operands.append(1.0 if value else 0.0)
            elif isinstance(value, (int, float)):
                operands.append(float(value))
            else:
                return None              # string/error broadcast: slow path
            continue
        lo = first + row_axis.value      # source row of the first lane
        values = _np.zeros(n, dtype=_np.float64)
        tags = _np.zeros(n, dtype=_np.uint8)
        if lo < 1:
            mask[: min(1 - lo, n)] = True    # sub-row-1 lanes #REF!
        buffers = store.column_buffers(c)
        if buffers is not None:
            src_values = _np.frombuffer(buffers[0], dtype=_np.float64)
            src_tags = _np.frombuffer(buffers[1], dtype=_np.uint8)
            i0 = lo - 1
            s0 = max(i0, 0)
            s1 = min(i0 + n, len(src_tags))
            if s1 > s0:
                d0 = s0 - i0
                values[d0:d0 + (s1 - s0)] = src_values[s0:s1]
                tags[d0:d0 + (s1 - s0)] = src_tags[s0:s1]
        # EMPTY lanes are already 0.0 (= to_number(None)) and BOOL lanes
        # already 1.0/0.0 (= to_number(bool)) in the value plane; any
        # other non-number tag needs per-cell semantics.
        mask |= (tags != TAG_EMPTY) & (tags != TAG_NUMBER) & (tags != TAG_BOOL)
        operands.append(values)
    with _np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        result = _sweep(template.elementwise.root, operands, mask)
    if not isinstance(result, _np.ndarray):  # pragma: no cover - all-scalar tree
        result = _np.full(n, float(result))
    ok = ~mask
    column = store.ensure_column(col, last)
    band = slice(first - 1, last)
    if column.side:
        # Direct tag writes bypass the store's side-table upkeep: evict
        # stale string/error payloads the sweep is about to overwrite.
        for i in [i for i in column.side if first - 1 <= i < last]:
            if ok[i - (first - 1)]:
                del column.side[i]
    out_values = _np.frombuffer(column.values, dtype=_np.float64)[band]
    out_tags = _np.frombuffer(column.tags, dtype=_np.uint8)[band]
    _np.copyto(out_values, result, where=ok)
    _np.copyto(out_tags, _np.uint8(TAG_NUMBER), where=ok)
    swept = int(ok.sum())
    if swept != n:
        for lane in _np.nonzero(mask)[0]:
            fallback((col, first + int(lane)))
    return swept


def _run_sliding(sheet, spec, col, rows, fallback, cols) -> int:
    state = _WindowState(spec.func, cols, sheet, keep_log=True)
    added_hi: int | None = None
    rolled = 0
    for row in rows:
        lo, hi = window_rows_at(spec, row)
        start = lo if added_hi is None else added_hi + 1
        for rr in range(start, hi + 1):
            state.add_row(rr)
        added_hi = hi
        state.drop_rows_below(lo)
        rolled += _emit(sheet, col, row, state, fallback)
    return rolled
