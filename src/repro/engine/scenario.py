"""Bulk what-if evaluation: K scenarios, one shared recalculation plan.

A *scenario* is a set of trial values for a few non-formula seed cells —
"what if growth were 3% and churn 0.7?".  Answering K of them through
the per-edit path costs K x (dependents BFS + topological sort +
re-evaluation), yet every scenario perturbs the *same* seeds: the dirty
frontier and its evaluation order are properties of the formula graph,
not of the trial values.  :class:`ScenarioEngine` exploits that:

1. **Plan once** — at construction it runs one multi-seed dependents BFS
   over the compressed graph and orders the dirty set exactly like the
   serial engine (super-node runs plus singles via
   :meth:`RecalcEngine._order_with_runs`, generic Kahn order for
   interpreter engines).  Cycles raise
   :class:`~repro.engine.recalc.CircularReferenceError` up front.
2. **Replay per scenario** — :meth:`run` writes each scenario's seed
   values and re-executes the frozen plan through the engine's normal
   tier dispatch (compiled templates, windowed rolls, elementwise
   sweeps, interpreter fallback).  Replays after the first count one
   ``EvalStats.scenario_plan_reuses`` each.
3. **Restore** — the base seed values and every dirty cell's cached
   value are snapshotted before the first replay (typed column packs on
   columnar sheets) and restored afterwards, so a sweep leaves the sheet
   bit-identical to how it found it, even on error.

``workers=N`` fans the scenario list across *resident replicas*
(:class:`repro.engine.shard.ScenarioReplicas`): the first fanned-out
sweep boots one full replica of the read surface per pool slot (value
planes + template families + plan spec, the same declarative freight
region workers use), and every later sweep ships only plane deltas —
columns the parent changed since the last ship, keyed by the PR 8
version stamps — plus the seed rows.  Only the requested output values
travel back.  Scenarios are independent by construction — they share no
writes — so fan-out changes wall-clock, never values, and the absorbed
worker counter deltas keep the PR 7 counter identity.
Fallbacks (unpicklable payloads, cross-sheet formulas, worker death)
re-run the affected chunk serially in the parent and are reported in
``EvalStats.serial_fallbacks``.

Scenario replays are transient: they bypass the journal and graph
maintenance entirely (seeds are value cells — their edits move no
edges).  The plan is valid until the sheet's formulas change; structural
edits are detected via the columnar store epoch and raise, formula edits
require building a fresh engine.

:meth:`sample` (Monte Carlo over a seeded RNG) and :meth:`solve`
(bisection goal-seek) are thin layers over :meth:`run`.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Mapping

from ..core.query import dependents_of_seeds
from ..formula.errors import ExcelError
from ..graphs.base import expand_cells
from ..grid.range import Range
from .recalc import CircularReferenceError

if TYPE_CHECKING:  # pragma: no cover
    from .recalc import RecalcEngine

__all__ = ["ScenarioEngine"]

#: Placeholder for "this scenario does not override this seed": the
#: replay writes the base value instead.  Resolved to concrete values
#: before any payload is shipped, so workers never see it.
_KEEP = object()


class ScenarioEngine:
    """K what-if scenarios over fixed seed cells, one shared plan.

    ``seeds`` are the cells scenarios may vary — A1 text, ``Range`` or
    ``(col, row)`` — and must hold values, not formulas (a formula seed
    would need graph surgery per scenario, defeating the shared plan;
    ``ValueError``).  The dirty frontier, its topological order, and its
    run super-nodes are computed here, once, against ``engine``'s graph.
    """

    def __init__(self, engine: "RecalcEngine", seeds):
        if engine.graph is None:
            raise ValueError(
                "scenario planning needs the engine's formula graph; "
                "plan-executor shadows cannot host a ScenarioEngine"
            )
        self.engine = engine
        self.sheet = engine.sheet
        self.seeds: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for target in seeds:
            pos = engine._position(target)
            if pos in seen:
                continue
            if self.sheet.formula_at(pos) is not None:
                raise ValueError(
                    f"seed {Range.cell(*pos).to_a1()} is a formula cell; "
                    "scenario seeds must be pure values"
                )
            seen.add(pos)
            self.seeds.append(pos)
        if not self.seeds:
            raise ValueError("at least one seed cell is required")
        self._seed_set = seen

        seed_ranges = [Range.cell(*pos) for pos in self.seeds]
        dirty_ranges = dependents_of_seeds(engine.graph, seed_ranges)
        formula_at = self.sheet.formula_at
        dirty = {
            pos for pos in expand_cells(dirty_ranges)
            if formula_at(pos) is not None
        }
        #: The dirty frontier (sorted, deterministic): every formula cell
        #: any replay can change.  Exactly these cells are snapshotted
        #: and restored around a sweep.
        self.dirty: list[tuple[int, int]] = sorted(dirty)
        self.plan = self._build_plan(dirty)
        self._replays = 0
        store = self.sheet._cells
        self._epoch = store.epoch if hasattr(store, "epoch") else None
        #: Resident process replicas (:class:`repro.engine.shard
        #: .ScenarioReplicas`), built lazily by the first fanned-out
        #: sweep and reused — with plane deltas only — by later ones.
        self._replicas = None
        self._replica_cols: set[int] | None = None
        self._replica_freight = None

    def _build_plan(self, dirty: set[tuple[int, int]]):
        engine = self.engine
        if engine.evaluation == "auto" and dirty:
            runs, by_col, member_map = engine._detect_runs(dirty)
            plan, _succs = engine._order_with_runs(dirty, runs, by_col, member_map)
            if plan is not None:
                return plan
            # Self-reference or cycle suspected: the generic ordering
            # owns that diagnosis.
        order, cyclic, preds = engine._topological_order(dirty)
        if cyclic:
            raise CircularReferenceError(engine._trace_cycle(cyclic, preds))
        return order

    @property
    def plan_size(self) -> int:
        """Formula cells one replay re-evaluates."""
        return len(self.dirty)

    # -- the sweep -------------------------------------------------------------

    def run(self, scenarios, outputs=(), *, workers: "int | None" = None):
        """Evaluate ``scenarios`` and return one output dict per scenario.

        Each scenario is a mapping ``{seed: value}`` (unlisted seeds keep
        their base values) or a sequence of values aligned with the
        constructor's seed order.  ``outputs`` are the cells to read
        after each replay; results are dicts keyed by the output spec as
        given (A1 strings stay strings, everything else keys by its
        ``(col, row)``).  ``workers=None`` inherits the engine's
        configured worker count; ``0``/``1`` forces serial replay.

        Values and per-cell eval counters are identical across serial
        and fan-out execution; the sheet is restored to its base state
        before this returns, success or failure.
        """
        self._check_fresh()
        rows = [self._normalize(scenario) for scenario in scenarios]
        out_specs = list(outputs)
        out_pos = [self.engine._position(spec) for spec in out_specs]
        if not rows:
            return []
        if workers is None:
            workers = self.engine.workers
        values = None
        if (
            int(workers) > 1
            and len(rows) > 1
            and self.engine.evaluation == "auto"
            and getattr(self.sheet, "store_kind", "object") == "columnar"
        ):
            values = self._run_process(rows, out_pos, int(workers))
        if values is None:
            values = self._run_serial(rows, out_pos)
        self._account_replays(len(rows))
        keys = [
            spec if isinstance(spec, str) else pos
            for spec, pos in zip(out_specs, out_pos)
        ]
        return [dict(zip(keys, row_values)) for row_values in values]

    def sample(self, n: int, draw, *, outputs=(), seed: int = 0,
               workers: "int | None" = None):
        """Monte Carlo: ``n`` scenarios drawn by ``draw(rng)``.

        ``draw`` receives a :class:`random.Random` seeded with ``seed``
        and returns one scenario (mapping or sequence); the draw order is
        fixed, so equal seeds give bit-identical sweeps regardless of
        ``workers``.
        """
        rng = random.Random(seed)
        scenarios = [draw(rng) for _ in range(n)]
        return self.run(scenarios, outputs, workers=workers)

    def solve(self, seed, output, target: float, lo: float, hi: float, *,
              tol: float = 1e-9, max_iter: int = 100) -> float:
        """Goal-seek: the ``seed`` value in ``[lo, hi]`` driving
        ``output`` to ``target``, by bisection on the shared plan.

        Requires ``output`` to evaluate numeric at both brackets and the
        residual to change sign between them (``ValueError`` otherwise —
        bisection needs a bracketed root).  Bisection is monotone-safe on
        the non-smooth functions spreadsheets produce (IF ladders,
        lookups); tolerance is on the seed interval width.
        """
        pos = self.engine._position(seed)
        if pos not in self._seed_set:
            raise ValueError(
                f"solve seed {Range.cell(*pos).to_a1()} is not one of "
                "this engine's scenario seeds"
            )

        def residual(x: float) -> float:
            value = self.run([{pos: x}], [output])[0].popitem()[1]
            if isinstance(value, ExcelError) or not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                raise ValueError(
                    f"goal-seek output is not numeric at seed={x!r}: {value!r}"
                )
            return float(value) - float(target)

        f_lo = residual(lo)
        if f_lo == 0.0:
            return float(lo)
        f_hi = residual(hi)
        if f_hi == 0.0:
            return float(hi)
        if (f_lo < 0.0) == (f_hi < 0.0):
            raise ValueError(
                f"goal-seek bracket [{lo}, {hi}] does not straddle "
                f"target {target} (residuals {f_lo:+g}, {f_hi:+g})"
            )
        lo, hi = float(lo), float(hi)
        mid = (lo + hi) / 2.0
        for _ in range(max_iter):
            mid = (lo + hi) / 2.0
            f_mid = residual(mid)
            if f_mid == 0.0 or (hi - lo) / 2.0 <= tol:
                break
            if (f_mid < 0.0) == (f_lo < 0.0):
                lo, f_lo = mid, f_mid
            else:
                hi = mid
        return mid

    # -- internals -------------------------------------------------------------

    def _check_fresh(self) -> None:
        if getattr(self.sheet, "_open_batches", None):
            raise RuntimeError(
                "scenario replay with an open batch session on this sheet: "
                "buffered edits would interleave with replays; commit or "
                "discard the batch first"
            )
        if self._epoch is not None and self.sheet._cells.epoch != self._epoch:
            raise RuntimeError(
                "scenario plan is stale: the sheet changed shape after the "
                "plan was built; construct a new ScenarioEngine"
            )

    def _normalize(self, scenario) -> tuple:
        if isinstance(scenario, Mapping):
            overrides: dict = {}
            for target, value in scenario.items():
                pos = self.engine._position(target)
                if pos not in self._seed_set:
                    raise ValueError(
                        f"scenario sets {Range.cell(*pos).to_a1()}, which is "
                        "not one of this engine's seed cells"
                    )
                overrides[pos] = value
            return tuple(overrides.get(pos, _KEEP) for pos in self.seeds)
        values = tuple(scenario)
        if len(values) != len(self.seeds):
            raise ValueError(
                f"scenario has {len(values)} values for {len(self.seeds)} seeds"
            )
        return values

    def _account_replays(self, count: int) -> None:
        """Every replay after this engine's first is a plan reuse —
        stable across serial and fan-out execution by construction."""
        first = 1 if self._replays == 0 else 0
        self.engine.eval_stats.scenario_plan_reuses += count - first
        self._replays += count

    def _snapshot(self):
        sheet = self.sheet
        seeds = [(pos, sheet.get_value(pos)) for pos in self.seeds]
        if getattr(sheet, "store_kind", "object") == "columnar":
            store = sheet._cells
            peaks: dict[int, int] = {}
            for col, row in self.dirty:
                if row > peaks.get(col, 0):
                    peaks[col] = row
            for col, row in peaks.items():
                # A dirty formula that has never been evaluated may live
                # in a column with no value plane yet; grow it so the
                # pack below (and replay writes) never reallocate.
                store.ensure_column(col, row)
            packed = store.pack_result_columns(self.dirty) if self.dirty else []
            return seeds, ("columnar", packed)
        formula_at = sheet.formula_at
        return seeds, (
            "object", [(pos, formula_at(pos).value) for pos in self.dirty]
        )

    def _restore(self, seeds, dirty_snapshot) -> None:
        sheet = self.sheet
        for pos, value in seeds:
            sheet.set_value(pos, value)
        kind, payload = dirty_snapshot
        if kind == "columnar":
            if payload:
                sheet._cells.merge_result_columns(payload)
        else:
            formula_at = sheet.formula_at
            for pos, value in payload:
                formula_at(pos).value = value

    def _resolve(self, rows, seeds_base):
        base = dict(seeds_base)
        return [
            tuple(
                base[pos] if value is _KEEP else value
                for pos, value in zip(self.seeds, row)
            )
            for row in rows
        ]

    def _run_serial(self, rows, out_pos):
        engine = self.engine
        sheet = self.sheet
        seeds_base, dirty_base = self._snapshot()
        resolved = self._resolve(rows, seeds_base)
        out = []
        try:
            for row in resolved:
                for pos, value in zip(self.seeds, row):
                    sheet.set_value(pos, value)
                engine._execute_plan(self.plan)
                out.append([sheet.get_value(pos) for pos in out_pos])
        finally:
            self._restore(seeds_base, dirty_base)
        return out

    def _run_process(self, rows, out_pos, workers: int):
        """Fan contiguous scenario chunks across resident replicas.

        The first fanned-out sweep bootstraps one full replica of the
        sweep's read surface per pool slot (:class:`~repro.engine.shard
        .ScenarioReplicas`); later sweeps ship only plane deltas —
        columns the parent changed since the last ship — plus the seed
        rows.  Replicas need no restore between replays: every replay
        deterministically overwrites the whole dirty frontier before
        reading it, and the parent sheet is never mutated by this path.

        Returns the per-scenario output rows, or None when the whole
        sweep must stay serial (cross-sheet formulas, unpicklable
        freight).  Chunks whose replica fails are replayed serially in
        the parent — scenarios own disjoint result rows, so the merge is
        trivially idempotent — and the slot re-boots on the next sweep.
        """
        from .parallel import _CrossSheetRegion, _declarative_region
        from .shard import ScenarioReplicas

        engine = self.engine
        sheet = self.sheet
        stats = engine.eval_stats
        if self._replica_freight is None:
            try:
                self._replica_freight = _declarative_region(sheet, self.plan)
            except _CrossSheetRegion:
                stats.serial_fallbacks += 1
                stats.fallback_reason = "cross-sheet"
                return None
        formulas, spec, read_cols = self._replica_freight
        cols = read_cols
        if cols is not None:
            cols = set(cols)
            cols.update(pos[0] for pos in self.seeds)
            cols.update(pos[0] for pos in out_pos)

        replicas = self._replicas
        if replicas is not None and (
            replicas.workers < workers
            or (self._replica_cols is not None
                and (cols is None or not cols <= self._replica_cols))
        ):
            # More slots, or outputs outside the resident closure:
            # re-boot with the widened surface (the old replicas drop
            # via their finalizer).
            cols = (
                None if cols is None or self._replica_cols is None
                else cols | self._replica_cols
            )
            replicas = None
        if replicas is None:
            replicas = ScenarioReplicas(workers)
            self._replica_cols = cols
        families, loose = formulas
        try:
            replicas.boot(
                sheet, self._replica_cols, families, loose, spec,
                self.seeds, stats,
            )
        except Exception:
            stats.serial_fallbacks += 1
            stats.fallback_reason = "payload-pickle-failed"
            return None
        self._replicas = replicas

        seeds_base = [(pos, sheet.get_value(pos)) for pos in self.seeds]
        resolved = self._resolve(rows, seeds_base)
        workers = min(workers, len(resolved), replicas.workers)
        bounds = [
            (len(resolved) * i // workers, len(resolved) * (i + 1) // workers)
            for i in range(workers)
        ]
        chunks = [resolved[lo:hi] for lo, hi in bounds if hi > lo]
        replies = replicas.replay_chunks(
            sheet, self._replica_cols, chunks, out_pos, stats
        )
        out = []
        for chunk, (reason, chunk_values) in zip(chunks, replies):
            if reason is not None:
                stats.serial_fallbacks += 1
                stats.fallback_reason = reason
                out.extend(self._run_serial(chunk, out_pos))
                continue
            stats.parallel_dispatches += 1
            out.extend(chunk_values)
        return out
