"""Incremental recalculation driven by the formula graph.

This is the paper's motivating application (Sec. I): when a cell changes,
the spreadsheet must find its dependents — on the critical path for
returning control to the user — mark them dirty, and recompute them in
dependency order.  The engine works against any
:class:`~repro.graphs.base.FormulaGraph`; plugging TACO in shrinks the
control-return time, which is exactly the paper's headline claim.

Per-edit cost: one graph BFS (compressed-edge bound, see
:mod:`repro.core.query`) to find the dirty set, then ``O(D + R)`` to
order and re-evaluate the ``D`` dirty formula cells with ``R`` dirty-set
reference pairs — untouched cells are never re-evaluated.  For many
edits at once, :meth:`RecalcEngine.begin_batch` amortises the graph
maintenance, the BFS, and the topological sort over the whole batch (see
:mod:`repro.engine.batch`).

Circular references discovered while ordering the dirty set raise
:class:`CircularReferenceError` carrying one offending cell chain; the
cells trapped in or downstream of cycles are marked ``#CYCLE!`` first,
so the sheet is left explicit about what could not be computed.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterable, NamedTuple

from ..core.taco_graph import TacoGraph, dependencies_column_major
from ..formula.errors import CYCLE_ERROR
from ..formula.evaluator import Evaluator
from ..graphs.base import FormulaGraph, expand_cells
from ..grid.range import Range
from ..sheet.sheet import Dependency, Sheet, SheetResolver

if TYPE_CHECKING:  # pragma: no cover
    from .batch import BatchEditSession

__all__ = ["CircularReferenceError", "RecalcEngine", "RecalcResult"]


class CircularReferenceError(RuntimeError):
    """A dependency cycle was found while ordering dirty cells.

    ``cycle`` is one concrete offending chain as ``(col, row)`` positions,
    closed — the first cell appears again at the end — and the message
    spells it in A1 notation (``B1 -> A1 -> B1``).  Every cell trapped in
    or downstream of a cycle has already been assigned ``#CYCLE!`` when
    this is raised.
    """

    def __init__(self, cycle: list[tuple[int, int]]):
        self.cycle = list(cycle)
        chain = " -> ".join(Range.cell(c, r).to_a1() for c, r in self.cycle)
        super().__init__(f"circular reference: {chain}")


class RecalcResult(NamedTuple):
    """Outcome of one update."""

    dirty_ranges: list[Range]
    dirty_count: int
    recomputed: int
    control_return_seconds: float
    total_seconds: float


class RecalcEngine:
    """A sheet, its formula graph, and an evaluator, kept in sync.

    The engine owns the coupling invariant: after every public mutation
    returns, the graph's decompressed dependency set equals exactly the
    references of the sheet's formula cells (restricted to this sheet),
    and every formula cell whose value could have changed has been
    re-evaluated.
    """

    def __init__(self, sheet: Sheet, graph: FormulaGraph | None = None):
        self.sheet = sheet
        if graph is None:
            graph = TacoGraph.full()
            graph.build(dependencies_column_major(sheet))
        self.graph = graph
        self.evaluator = Evaluator(SheetResolver(sheet))

    # -- full recomputation ----------------------------------------------------

    def recalculate_all(self) -> int:
        """Evaluate every formula cell from scratch, in dependency order."""
        cells = [pos for pos, _ in self.sheet.formula_cells()]
        return self._evaluate_in_order(set(cells))

    # -- updates ------------------------------------------------------------------

    def set_value(self, target, value) -> RecalcResult:
        """Change a pure value and refresh its dependents.

        Overwriting a formula cell with a value also clears the cell's
        dependencies from the graph — otherwise stale edges would keep
        reporting dependents of a formula that no longer exists.
        """
        start = time.perf_counter()
        pos = self._position(target)
        cell_range = Range.cell(*pos)
        previous = self.sheet.cell_at(pos)
        if previous is not None and previous.is_formula:
            self.graph.clear_cells(cell_range)
        self.sheet.set_value(pos, value)
        dirty_ranges = self.graph.find_dependents(cell_range)
        control_return = time.perf_counter() - start
        recomputed = self.recompute(dirty_ranges)
        total = time.perf_counter() - start
        return RecalcResult(
            dirty_ranges, sum(r.size for r in dirty_ranges), recomputed,
            control_return, total,
        )

    def set_formula(self, target, text: str) -> RecalcResult:
        """Change a formula: maintain the graph, then refresh dependents."""
        start = time.perf_counter()
        pos = self._position(target)
        cell_range = Range.cell(*pos)
        self.graph.clear_cells(cell_range)
        self.sheet.set_formula(pos, text)
        cell = self.sheet.cell_at(pos)
        for ref in cell.references:
            if ref.sheet is not None and ref.sheet != self.sheet.name:
                continue
            self.graph.add_dependency(Dependency(ref.range, cell_range, ref.cue))
        dirty_ranges = self.graph.find_dependents(cell_range)
        control_return = time.perf_counter() - start
        recomputed = self.recompute(dirty_ranges, extra={pos})
        total = time.perf_counter() - start
        return RecalcResult(
            dirty_ranges, sum(r.size for r in dirty_ranges), recomputed,
            control_return, total,
        )

    def clear_cell(self, target) -> RecalcResult:
        """Erase a cell entirely and refresh its dependents."""
        start = time.perf_counter()
        pos = self._position(target)
        cell_range = Range.cell(*pos)
        self.graph.clear_cells(cell_range)
        self.sheet.clear_cell(pos)
        dirty_ranges = self.graph.find_dependents(cell_range)
        control_return = time.perf_counter() - start
        recomputed = self.recompute(dirty_ranges)
        total = time.perf_counter() - start
        return RecalcResult(
            dirty_ranges, sum(r.size for r in dirty_ranges), recomputed,
            control_return, total,
        )

    # -- batched editing ---------------------------------------------------------

    def begin_batch(self, **kwargs) -> "BatchEditSession":
        """Open a :class:`~repro.engine.batch.BatchEditSession` on this engine.

        Usable as a context manager: edits recorded inside the ``with``
        block are coalesced and committed on exit (discarded if the block
        raises).  See :mod:`repro.engine.batch` for the pipeline.
        """
        from .batch import BatchEditSession

        return BatchEditSession(self, **kwargs)

    # -- dirty-set recomputation ---------------------------------------------------

    def recompute(self, dirty_ranges: Iterable[Range],
                  extra: set[tuple[int, int]] | None = None) -> int:
        """Re-evaluate the formula cells of ``dirty_ranges`` in topological order.

        ``extra`` adds individual positions (e.g. an edited formula cell
        itself) to the dirty set.  This is the common tail of every
        update path — per-edit or batched: callers supply whatever dirty
        ranges their graph query produced and the engine orders and
        evaluates only those cells.  Raises
        :class:`CircularReferenceError` if the dirty subgraph contains a
        dependency cycle.
        """
        dirty = {
            pos
            for pos in expand_cells(dirty_ranges)
            if (cell := self.sheet.cell_at(pos)) is not None and cell.is_formula
        }
        if extra:
            for pos in extra:
                cell = self.sheet.cell_at(pos)
                if cell is not None and cell.is_formula:
                    dirty.add(pos)
        return self._evaluate_in_order(dirty)

    # -- internals -------------------------------------------------------------------

    @staticmethod
    def _position(target) -> tuple[int, int]:
        from ..sheet.sheet import _coerce_pos

        return _coerce_pos(target)

    def _evaluate_in_order(self, dirty: set[tuple[int, int]]) -> int:
        order, cyclic, preds = self._topological_order(dirty)
        for pos in order:
            self._evaluate_cell(pos)
        if cyclic:
            for pos in cyclic:
                self.sheet.cell_at(pos).value = CYCLE_ERROR
            raise CircularReferenceError(self._trace_cycle(cyclic, preds))
        return len(order)

    def _topological_order(
        self, dirty: set[tuple[int, int]]
    ) -> tuple[
        list[tuple[int, int]],
        set[tuple[int, int]],
        dict[tuple[int, int], list[tuple[int, int]]],
    ]:
        """Kahn's algorithm over the dirty cells' reference structure.

        Returns ``(order, cyclic, pred_map)``: the evaluable cells in
        dependency order, the cells left unordered (in or downstream of a
        cycle), and the dirty-set predecessor adjacency used to extract a
        concrete offending chain.  ``O(D + R)`` for ``D`` dirty cells
        with ``R`` dirty-set reference pairs.
        """
        preds: dict[tuple[int, int], int] = {}
        pred_map: dict[tuple[int, int], list[tuple[int, int]]] = {}
        succs: dict[tuple[int, int], list[tuple[int, int]]] = {}
        dirty_list = list(dirty)
        for pos in dirty_list:
            cell = self.sheet.cell_at(pos)
            count = 0
            for ref in cell.references:
                if ref.sheet is not None and ref.sheet != self.sheet.name:
                    continue
                rng = ref.range
                if rng.contains_cell(*pos):
                    # Self-reference (direct, or a range containing the
                    # cell): a one-cell cycle.  The never-decremented
                    # count keeps the cell unordered.
                    count += 1
                    pred_map.setdefault(pos, []).append(pos)
                if rng.size <= len(dirty):
                    members = [p for p in rng.cells() if p in dirty and p != pos]
                else:
                    members = [p for p in dirty if rng.contains_cell(*p) and p != pos]
                for member in members:
                    count += 1
                    succs.setdefault(member, []).append(pos)
                    pred_map.setdefault(pos, []).append(member)
            preds[pos] = count
        ready = [pos for pos in dirty_list if preds[pos] == 0]
        order: list[tuple[int, int]] = []
        while ready:
            pos = ready.pop()
            order.append(pos)
            for succ in succs.get(pos, ()):  # noqa: B020
                preds[succ] -= 1
                if preds[succ] == 0:
                    ready.append(succ)
        cyclic = {pos for pos in dirty_list if preds[pos] > 0}
        return order, cyclic, pred_map

    @staticmethod
    def _trace_cycle(
        cyclic: set[tuple[int, int]],
        pred_map: dict[tuple[int, int], list[tuple[int, int]]],
    ) -> list[tuple[int, int]]:
        """Walk predecessors inside the unordered set until one repeats.

        Every unordered cell has at least one unordered predecessor (that
        is what kept it unordered), so the walk always closes a cycle.
        The returned chain is in dependency order and closed: the first
        cell is repeated at the end.
        """
        start = min(cyclic)
        seen: dict[tuple[int, int], int] = {}
        chain: list[tuple[int, int]] = []
        pos = start
        while pos not in seen:
            seen[pos] = len(chain)
            chain.append(pos)
            pos = next(p for p in pred_map[pos] if p in cyclic)
        cycle = chain[seen[pos]:]
        cycle.reverse()
        return cycle + [cycle[0]]

    def _evaluate_cell(self, pos: tuple[int, int]) -> None:
        cell = self.sheet.cell_at(pos)
        value = self.evaluator.evaluate(
            cell.formula_ast, self.sheet.name, pos[0], pos[1]
        )
        cell.value = value
