"""Incremental recalculation driven by the formula graph.

This is the paper's motivating application (Sec. I): when a cell changes,
the spreadsheet must find its dependents — on the critical path for
returning control to the user — mark them dirty, and recompute them in
dependency order.  The engine works against any
:class:`~repro.graphs.base.FormulaGraph`; plugging TACO in shrinks the
control-return time, which is exactly the paper's headline claim.

Per-edit cost: one graph BFS (compressed-edge bound, see
:mod:`repro.core.query`) to find the dirty set, then ``O(D + R)`` to
order and re-evaluate the ``D`` dirty formula cells with ``R`` dirty-set
reference pairs — untouched cells are never re-evaluated.  For many
edits at once, :meth:`RecalcEngine.begin_batch` amortises the graph
maintenance, the BFS, and the topological sort over the whole batch (see
:mod:`repro.engine.batch`).

Circular references discovered while ordering the dirty set raise
:class:`CircularReferenceError` carrying one offending cell chain; the
cells trapped in or downstream of cycles are marked ``#CYCLE!`` first,
so the sheet is left explicit about what could not be computed.
"""

from __future__ import annotations

import os
import time
from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Iterable, NamedTuple

from ..core.taco_graph import TacoGraph, dependencies_column_major
from ..formula.compile import CompilingEvaluator, TemplateRegistry
from ..formula.errors import CYCLE_ERROR
from ..graphs.base import FormulaGraph, expand_cells
from ..grid.range import Range
from ..sheet.sheet import Dependency, Sheet, SheetResolver
from . import lookup, vectorized

if TYPE_CHECKING:  # pragma: no cover
    from .batch import BatchEditSession

__all__ = ["CircularReferenceError", "RecalcEngine", "RecalcResult"]


class CircularReferenceError(RuntimeError):
    """A dependency cycle was found while ordering dirty cells.

    ``cycle`` is one concrete offending chain as ``(col, row)`` positions,
    closed — the first cell appears again at the end — and the message
    spells it in A1 notation (``B1 -> A1 -> B1``).  Every cell trapped in
    or downstream of a cycle has already been assigned ``#CYCLE!`` when
    this is raised.
    """

    def __init__(self, cycle: list[tuple[int, int]]):
        self.cycle = list(cycle)
        chain = " -> ".join(Range.cell(c, r).to_a1() for c, r in self.cycle)
        super().__init__(f"circular reference: {chain}")


class _TemplateRun:
    """One dispatchable windowed run: a column stretch + its blockers.

    A run is a maximal stretch of consecutive dirty cells in one column
    sharing a windowed-aggregate template.  ``blockers`` are the dirty
    cells *outside* the run that some member's window reads — in the
    super-node ordering they are the run's predecessors, so the run is
    scheduled only after all of them; in-run references need no edges
    because the rolling direction evaluates them in dependency order.
    """

    __slots__ = ("spec", "col", "rows", "member_set", "blockers")

    def __init__(self, spec, col: int, rows: list[int],
                 member_set: set[tuple[int, int]], blockers: set[tuple[int, int]]):
        self.spec = spec
        self.col = col
        self.rows = rows                # ascending, consecutive
        self.member_set = member_set
        self.blockers = blockers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"_TemplateRun({self.spec.func} col={self.col} "
            f"rows={self.rows[0]}..{self.rows[-1]}, {len(self.blockers)} blockers)"
        )


class _ElementwiseRun:
    """One dispatchable elementwise run: a column stretch of cells whose
    shared template is pure float arithmetic over cell refs, evaluated
    as a single numpy array sweep.  Unlike windowed runs, no reference
    may resolve into the run itself (the sweep reads all inputs before
    writing any output), so construction rejects any recurrence; dirty
    cells the lanes read from *outside* the run are ``blockers``,
    ordering the run after them exactly like a windowed run.
    """

    __slots__ = ("template", "col", "rows", "member_set", "blockers")

    def __init__(self, template, col: int, rows: list[int],
                 member_set: set[tuple[int, int]], blockers: set[tuple[int, int]]):
        self.template = template
        self.col = col
        self.rows = rows                # ascending, consecutive
        self.member_set = member_set
        self.blockers = blockers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"_ElementwiseRun({self.template.key!r} col={self.col} "
            f"rows={self.rows[0]}..{self.rows[-1]}, {len(self.blockers)} blockers)"
        )


def _plan_node_key(node) -> tuple[int, int]:
    """(col, first row) of a plan node — singles and runs alike."""
    if type(node) is tuple:
        return node
    return (node.col, node.rows[0])


class RecalcResult(NamedTuple):
    """Outcome of one update."""

    dirty_ranges: list[Range]
    dirty_count: int
    recomputed: int
    control_return_seconds: float
    total_seconds: float


class RecalcEngine:
    """A sheet, its formula graph, and an evaluator, kept in sync.

    The engine owns the coupling invariant: after every public mutation
    returns, the graph's decompressed dependency set equals exactly the
    references of the sheet's formula cells (restricted to this sheet),
    and every formula cell whose value could have changed has been
    re-evaluated.
    """

    def __init__(
        self,
        sheet: Sheet,
        graph: FormulaGraph | None = None,
        *,
        evaluation: str = "auto",
        registry: TemplateRegistry | None = None,
        journal=None,
        workers: int | None = None,
        worker_mode: str | None = None,
        parallel_min_dirty: int | None = None,
        lookup_indexes: bool | None = None,
        shards: int | None = None,
    ):
        if evaluation not in ("auto", "interpreter"):
            raise ValueError(f"unknown evaluation mode {evaluation!r}")
        self.sheet = sheet
        #: Optional :class:`~repro.engine.journal.Journal`: every committed
        #: mutation (cell edit, batch commit, structural op) appends one
        #: durable record before dependents are recomputed.
        self.journal = journal
        if graph is None:
            graph = TacoGraph.full()
            graph.build(dependencies_column_major(sheet))
        self.graph = graph
        #: ``"auto"`` — compiled templates + windowed runs with transparent
        #: interpreter fallback; ``"interpreter"`` — tree-walker only (the
        #: pre-compilation behaviour, kept for benchmarking/differential tests).
        self.evaluation = evaluation
        self.cell_evaluator = CompilingEvaluator(SheetResolver(sheet), registry=registry)
        self.eval_stats = self.cell_evaluator.stats
        self.evaluator = self.cell_evaluator.interpreter
        #: Lookaside lookup indexes (``repro.engine.lookup``) — auto mode
        #: only, so ``evaluation="interpreter"`` remains a scan-only
        #: differential oracle.
        if self.evaluation == "auto" and lookup.indexes_enabled(lookup_indexes):
            lookup.attach_probe(self.cell_evaluator, sheet)
        if workers is None:
            workers = int(os.environ.get("REPRO_RECALC_WORKERS", "0") or 0)
        self.workers = int(workers)
        #: Region scheduler (``repro.engine.parallel``) — present only in
        #: auto mode with ``workers > 1``; interpreter engines stay serial
        #: so the differential oracle is never itself partitioned.
        if self.evaluation == "auto" and self.workers > 1:
            from .parallel import ParallelRecalc

            self.parallel = ParallelRecalc(
                self.workers, mode=worker_mode, min_dirty=parallel_min_dirty
            )
        else:
            self.parallel = None
        if shards is None:
            shards = int(os.environ.get("REPRO_RECALC_SHARDS", "0") or 0)
        self.shards = int(shards)
        #: Persistent shard runtime (``repro.engine.shard``) — auto mode
        #: over a columnar sheet with ``shards > 1``.  Tried before the
        #: pooled scheduler; object-store sheets have no plane protocol
        #: to ship, so the setting is silently inert there.
        if (
            self.evaluation == "auto" and self.shards > 1
            and getattr(sheet, "store_kind", "object") == "columnar"
        ):
            from .shard import ShardRuntime

            self.shard_runtime = ShardRuntime(
                self.shards, min_dirty=parallel_min_dirty
            )
        else:
            self.shard_runtime = None

    @classmethod
    def plan_executor(cls, sheet: Sheet, *, evaluation: str = "auto",
                      registry: TemplateRegistry | None = None) -> "RecalcEngine":
        """A graph-less shadow engine that can only run pre-built plans.

        Parallel region execution (:mod:`repro.engine.parallel`) needs
        the evaluation tiers — compiled templates, windowed rolls,
        elementwise sweeps, interpreter fallback — without graph
        maintenance, journaling, or further partitioning.  The shadow
        shares the parent's template registry (pass ``registry=``) so
        compilation work is not repeated per region, but owns a fresh
        :class:`~repro.formula.compile.EvalStats` whose counters the
        parent merges in deterministically after the region completes.
        """
        engine = cls.__new__(cls)
        engine.sheet = sheet
        engine.journal = None
        engine.graph = None
        engine.evaluation = evaluation
        engine.cell_evaluator = CompilingEvaluator(SheetResolver(sheet), registry=registry)
        engine.eval_stats = engine.cell_evaluator.stats
        engine.evaluator = engine.cell_evaluator.interpreter
        if evaluation == "auto" and lookup.indexes_enabled():
            lookup.attach_probe(engine.cell_evaluator, sheet)
        engine.workers = 0
        engine.parallel = None
        engine.shards = 0
        engine.shard_runtime = None
        return engine

    # -- full recomputation ----------------------------------------------------

    def recalculate_all(self) -> int:
        """Evaluate every formula cell from scratch, in dependency order."""
        cells = [pos for pos, _ in self.sheet.formula_cells()]
        return self._evaluate_in_order(set(cells))

    # -- updates ------------------------------------------------------------------

    def set_value(self, target, value) -> RecalcResult:
        """Change a pure value and refresh its dependents.

        Overwriting a formula cell with a value also clears the cell's
        dependencies from the graph — otherwise stale edges would keep
        reporting dependents of a formula that no longer exists.
        """
        start = time.perf_counter()
        pos = self._position(target)
        if self.journal is not None:
            # Journaled values must be representable in the record format;
            # validating *before* any mutation keeps the sheet and the
            # journal from diverging when they are not.
            from ..io.snapshot import encode_value

            encode_value(value)
        cell_range = Range.cell(*pos)
        self.apply_cell_mutation(pos, "value", value)
        if self.journal is not None:
            self.journal.record_cell(self.sheet.name, "value", pos, value)
        dirty_ranges = self.graph.find_dependents(cell_range)
        control_return = time.perf_counter() - start
        recomputed = self.recompute(dirty_ranges)
        total = time.perf_counter() - start
        return RecalcResult(
            dirty_ranges, sum(r.size for r in dirty_ranges), recomputed,
            control_return, total,
        )

    def set_formula(self, target, text: str) -> RecalcResult:
        """Change a formula: maintain the graph, then refresh dependents."""
        start = time.perf_counter()
        pos = self._position(target)
        if self.journal is not None:
            # Parse *before* any mutation (memoised, so the later parse is
            # free): an unparseable formula would otherwise fail mid-edit
            # after the graph was already cleared, with no journal record
            # — leaving live state the journal cannot reproduce.
            from ..formula.parser import parse_formula

            parse_formula(text[1:] if text.startswith("=") else text)
        cell_range = Range.cell(*pos)
        self.apply_cell_mutation(pos, "formula", text)
        if self.journal is not None:
            cell = self.sheet.cell_at(pos)
            self.journal.record_cell(self.sheet.name, "formula", pos, cell.formula_text)
        dirty_ranges = self.graph.find_dependents(cell_range)
        control_return = time.perf_counter() - start
        recomputed = self.recompute(dirty_ranges, extra={pos})
        total = time.perf_counter() - start
        return RecalcResult(
            dirty_ranges, sum(r.size for r in dirty_ranges), recomputed,
            control_return, total,
        )

    def clear_cell(self, target) -> RecalcResult:
        """Erase a cell entirely and refresh its dependents."""
        start = time.perf_counter()
        pos = self._position(target)
        cell_range = Range.cell(*pos)
        self.apply_cell_mutation(pos, "clear", None)
        if self.journal is not None:
            self.journal.record_cell(self.sheet.name, "clear", pos)
        dirty_ranges = self.graph.find_dependents(cell_range)
        control_return = time.perf_counter() - start
        recomputed = self.recompute(dirty_ranges)
        total = time.perf_counter() - start
        return RecalcResult(
            dirty_ranges, sum(r.size for r in dirty_ranges), recomputed,
            control_return, total,
        )

    # -- shared mutation core ------------------------------------------------------

    def apply_cell_mutation(self, pos: tuple[int, int], op: str, payload) -> None:
        """Sheet write + graph maintenance for one cell edit — no journal
        record, no recomputation.

        The shared core of :meth:`set_value` / :meth:`set_formula` /
        :meth:`clear_cell` *and* of journal replay
        (:mod:`repro.engine.journal`), so a recovered graph is maintained
        by definition exactly like the live one was.  ``op`` is
        ``"value"`` / ``"formula"`` / ``"clear"``; ``payload`` is the
        value or formula text (ignored for clears).
        """
        cell_range = Range.cell(*pos)
        shard_rt = self.shard_runtime
        if op == "value":
            previous = self.sheet.cell_at(pos)
            if previous is not None and previous.is_formula:
                # Stale edges would keep reporting dependents of a
                # formula that no longer exists.  A formula disappearing
                # also invalidates resident shard ownership; plain value
                # writes ride the version stamps and keep shards hot.
                if shard_rt is not None:
                    shard_rt.note_formula_change()
                self.graph.clear_cells(cell_range)
            self.sheet.set_value(pos, payload)
        elif op == "formula":
            if shard_rt is not None:
                shard_rt.note_formula_change()
            self.graph.clear_cells(cell_range)
            self.sheet.set_formula(pos, payload)
            cell = self.sheet.cell_at(pos)
            for ref in cell.references:
                if ref.sheet is not None and ref.sheet != self.sheet.name:
                    continue
                self.graph.add_dependency(Dependency(ref.range, cell_range, ref.cue))
        elif op == "clear":
            if shard_rt is not None and self.sheet.formula_at(pos) is not None:
                shard_rt.note_formula_change()
            self.graph.clear_cells(cell_range)
            self.sheet.clear_cell(pos)
        else:
            raise ValueError(f"unknown cell op {op!r}")

    # -- batched editing ---------------------------------------------------------

    def begin_batch(self, **kwargs) -> "BatchEditSession":
        """Open a :class:`~repro.engine.batch.BatchEditSession` on this engine.

        Usable as a context manager: edits recorded inside the ``with``
        block are coalesced and committed on exit (discarded if the block
        raises).  See :mod:`repro.engine.batch` for the pipeline.
        """
        from .batch import BatchEditSession

        return BatchEditSession(self, **kwargs)

    # -- structural edits ---------------------------------------------------------

    def insert_rows(self, row: int, count: int = 1, **kwargs):
        """Insert ``count`` blank rows before ``row``, end-to-end.

        Sheet rewrite, incremental graph maintenance, and dirty
        recalculation in one pass — see
        :func:`repro.engine.structural.apply_structural_edit` (which
        also documents ``workbook=`` for cross-sheet reference
        rewriting).  Returns a
        :class:`~repro.engine.structural.StructuralEditResult`.
        """
        from .structural import apply_structural_edit

        return apply_structural_edit(self, "insert_rows", row, count, **kwargs)

    def delete_rows(self, row: int, count: int = 1, **kwargs):
        """Delete rows ``[row, row+count)``; references into them go ``#REF!``."""
        from .structural import apply_structural_edit

        return apply_structural_edit(self, "delete_rows", row, count, **kwargs)

    def insert_columns(self, col: int, count: int = 1, **kwargs):
        """Insert ``count`` blank columns before ``col``, end-to-end."""
        from .structural import apply_structural_edit

        return apply_structural_edit(self, "insert_columns", col, count, **kwargs)

    def delete_columns(self, col: int, count: int = 1, **kwargs):
        """Delete columns ``[col, col+count)``; references into them go ``#REF!``."""
        from .structural import apply_structural_edit

        return apply_structural_edit(self, "delete_columns", col, count, **kwargs)

    # -- dirty-set recomputation ---------------------------------------------------

    def recompute(self, dirty_ranges: Iterable[Range],
                  extra: set[tuple[int, int]] | None = None) -> int:
        """Re-evaluate the formula cells of ``dirty_ranges`` in topological order.

        ``extra`` adds individual positions (e.g. an edited formula cell
        itself) to the dirty set.  This is the common tail of every
        update path — per-edit or batched: callers supply whatever dirty
        ranges their graph query produced and the engine orders and
        evaluates only those cells.  Raises
        :class:`CircularReferenceError` if the dirty subgraph contains a
        dependency cycle.
        """
        formula_at = self.sheet.formula_at
        dirty = {
            pos for pos in expand_cells(dirty_ranges) if formula_at(pos) is not None
        }
        if extra:
            for pos in extra:
                if formula_at(pos) is not None:
                    dirty.add(pos)
        return self._evaluate_in_order(dirty)

    # -- internals -------------------------------------------------------------------

    @staticmethod
    def _position(target) -> tuple[int, int]:
        from ..sheet.sheet import _coerce_pos

        return _coerce_pos(target)

    def _evaluate_in_order(self, dirty: set[tuple[int, int]]) -> int:
        parallel = self.parallel
        if parallel is not None and not parallel.eligible(len(dirty)):
            parallel = None
        shard_rt = self.shard_runtime
        if shard_rt is not None and not shard_rt.eligible(len(dirty)):
            shard_rt = None
        if self.evaluation == "auto" and (
            parallel is not None or shard_rt is not None
            or len(dirty) >= vectorized.MIN_RUN
        ):
            runs, by_col, member_map = self._detect_runs(dirty)
            # Parallel execution partitions the *plan* (super-nodes plus
            # singles), so it needs one even when no runs were detected;
            # for an acyclic dirty set the empty-runs plan is exactly the
            # generic topological order.
            if runs or parallel is not None or shard_rt is not None:
                plan, succs = self._order_with_runs(dirty, runs, by_col, member_map)
                if plan is not None:
                    # Dispatch order: resident shards, then the pooled
                    # scheduler, then serial — each declines with None
                    # when it has nothing to gain.
                    if shard_rt is not None:
                        done = shard_rt.execute(self, plan, succs)
                        if done is not None:
                            return done
                    if parallel is not None:
                        done = parallel.execute(self, plan, succs)
                        if done is not None:
                            return done
                    return self._execute_plan(plan)
                if parallel is not None or shard_rt is not None:
                    # Cycles are ordered (and marked #CYCLE!) by the
                    # generic serial path; report the bail-out.
                    self.eval_stats.serial_fallbacks += 1
                    self.eval_stats.fallback_reason = "cycle"
                # A cycle (or a self-reference) is in play somewhere: the
                # generic cell-level ordering below owns that semantics.
        order, cyclic, preds = self._topological_order(dirty)
        for pos in order:
            self._evaluate_cell(pos)
        if cyclic:
            for pos in cyclic:
                self.sheet.cell_at(pos).value = CYCLE_ERROR
            raise CircularReferenceError(self._trace_cycle(cyclic, preds))
        return len(order)

    # -- windowed-run dispatch ----------------------------------------------------

    def _order_with_runs(
        self,
        dirty: set[tuple[int, int]],
        runs: list["_TemplateRun"],
        by_col: dict[int, list[int]],
        member_map: dict[tuple[int, int], "_TemplateRun"],
    ):
        """Topologically order singles and runs-as-super-nodes.

        The generic ordering materialises one edge per (window cell,
        member) pair — ``O(run x window)`` for a running-total column,
        the very cost the rolling evaluator removes.  Here a run is one
        node whose predecessors are its *blockers* (computed once from
        the union window), so ordering costs ``O(D log D + E')`` in the
        number of dirty cells and coalesced edges.  In-run prefix
        references need no edges: the rolling direction orders them.

        Returns ``(plan, succs)``: the execution plan — a list of
        ``(col, row)`` singles and :class:`_TemplateRun` /
        :class:`_ElementwiseRun` nodes — plus the successor adjacency
        over plan nodes that ordered it (the parallel partitioner's
        region graph).  ``plan`` is ``None`` when a self-reference or
        cycle is detected, in which case the caller must use the generic
        ordering (which owns ``#CYCLE!`` semantics).
        """
        preds: dict[object, int] = {}
        succs: dict[object, list[object]] = {}
        sheet_name = self.sheet.name
        for pos in dirty:
            if pos in member_map:
                continue
            cell = self.sheet.formula_at(pos)
            count = 0
            seen: set[object] = set()
            for ref in cell.references:
                if ref.sheet is not None and ref.sheet != sheet_name:
                    continue
                rng = ref.range
                if rng.contains_cell(*pos):
                    return None, succs  # self-reference: a one-cell cycle
                if rng.c1 == rng.c2 and rng.c1 not in by_col:
                    # Single-column ref into a clean column — the
                    # overwhelmingly common shape (formulas over value
                    # inputs); skip the generator machinery entirely.
                    continue
                for prec in self._dirty_in_range(rng, by_col):
                    if prec == pos:
                        continue
                    node = member_map.get(prec, prec)
                    if node in seen:
                        continue
                    seen.add(node)
                    count += 1
                    succs.setdefault(node, []).append(pos)
            preds[pos] = count
        for run in runs:
            count = 0
            seen = set()
            for prec in run.blockers:
                node = member_map.get(prec, prec)
                if node in seen:
                    continue
                seen.add(node)
                count += 1
                succs.setdefault(node, []).append(run)
            preds[run] = count
        ready = [node for node, count in preds.items() if count == 0]
        # Column-major order for the initially-ready nodes (the whole
        # plan, for dependency-free dirty sets): deterministic instead of
        # set-iteration order, sequential column writes, and — the real
        # payoff — spatially coherent parallel regions, so a process
        # worker's freight ships a few planes instead of a scatter of
        # every column.
        ready.sort(key=_plan_node_key, reverse=True)
        plan: list[object] = []
        while ready:
            node = ready.pop()
            plan.append(node)
            for succ in succs.get(node, ()):  # noqa: B020
                preds[succ] -= 1
                if preds[succ] == 0:
                    ready.append(succ)
        if len(plan) != len(preds):
            return None, succs          # cycle among dirty cells/runs
        return plan, succs

    @staticmethod
    def _dirty_in_range(rng: Range, by_col: dict[int, list[int]]):
        """Dirty positions inside ``rng``, via per-column sorted rows.

        Iterates whichever is narrower — the reference's column span
        (single-column refs are the overwhelming case) or the dirty
        column set — so a wide dirty set doesn't pay a full-dict scan
        for every one-column reference.
        """
        r1, r2 = rng.r1, rng.r2
        c1, c2 = rng.c1, rng.c2
        if c1 == c2:
            rows = by_col.get(c1)
            if rows:
                lo = bisect_left(rows, r1)
                hi = bisect_right(rows, r2)
                for row in rows[lo:hi]:
                    yield (c1, row)
            return
        if c2 - c1 < len(by_col):
            cols = [(col, by_col.get(col)) for col in range(c1, c2 + 1)]
        else:
            cols = [
                (col, rows) for col, rows in by_col.items() if c1 <= col <= c2
            ]
        for col, rows in cols:
            if not rows:
                continue
            lo = bisect_left(rows, r1)
            hi = bisect_right(rows, r2)
            for row in rows[lo:hi]:
                yield (col, row)

    def _execute_plan(self, plan) -> int:
        """Evaluate an ordered plan of singles and runs."""
        stats = self.eval_stats
        count = 0
        for node in plan:
            if type(node) is tuple:
                self._evaluate_cell(node)
                count += 1
                continue
            rows = list(node.rows)
            if type(node) is _ElementwiseRun:
                swept = vectorized.evaluate_elementwise_run(
                    self.sheet, node.template, node.col, rows, self._evaluate_cell
                )
                if swept is None:
                    # No numpy / non-columnar store / unsweepable scalar:
                    # per-cell in any order (no in-run references).
                    for row in rows:
                        self._evaluate_cell((node.col, row))
                elif swept:
                    stats.elementwise_cells += swept
                    stats.elementwise_runs += 1
                count += len(rows)
                continue
            rolled = vectorized.evaluate_run(
                self.sheet, node.spec, node.col, rows, self._evaluate_cell
            )
            if rolled is None:
                # Geometry refused at the last moment: evaluate per cell,
                # respecting the rolling direction for self-references.
                descending = node.spec.tail_row.fixed and not node.spec.head_row.fixed
                for row in (reversed(rows) if descending else rows):
                    self._evaluate_cell((node.col, row))
            elif rolled:
                # `rolled` counts only cells the rolling path computed;
                # delegated cells were accounted by _evaluate_cell.
                stats.windowed_cells += rolled
                stats.windowed_runs += 1
            count += len(rows)
        return count

    def _detect_runs(self, dirty: set[tuple[int, int]]):
        """Same-template windowed runs hiding in the dirty set.

        Candidate spans come from the compressed graph's dependent ranges
        when it exposes them — the RR/FR edges *are* the autofill
        families — with the raw per-column extents appended so cells the
        graph left uncompressed (or graphs without the hook) still get
        run detection.  Each maximal consecutive stretch of cells sharing
        one windowed-aggregate template becomes a :class:`_TemplateRun`
        carrying its out-of-run dirty *blockers*; stretches whose in-run
        references do not follow the rolling direction are discarded.
        """
        by_col: dict[int, list[int]] = {}
        for c, r in dirty:
            by_col.setdefault(c, []).append(r)
        for rows in by_col.values():
            rows.sort()
        spans: list[Range] = []
        runs_of = getattr(self.graph, "dependent_column_runs", None)
        if runs_of is not None:
            c1, c2 = min(by_col), max(by_col)
            r1 = min(rows[0] for rows in by_col.values())
            r2 = max(rows[-1] for rows in by_col.values())
            spans.extend(runs_of(Range(c1, r1, c2, r2)))
        spans.extend(Range(c, rows[0], c, rows[-1]) for c, rows in by_col.items())

        runs: list[_TemplateRun] = []
        claimed: set[tuple[int, int]] = set()
        for span in spans:
            rows = by_col.get(span.c1)
            if not rows:
                continue
            lo = bisect_left(rows, span.r1)
            hi = bisect_right(rows, span.r2)
            self._stretches_in_rows(span.c1, rows[lo:hi], claimed, by_col, runs)
        member_map = {pos: run for run in runs for pos in run.member_set}
        return runs, by_col, member_map

    def _stretches_in_rows(
        self,
        col: int,
        rows: list[int],
        claimed: set[tuple[int, int]],
        by_col: dict[int, list[int]],
        out: list["_TemplateRun"],
    ) -> None:
        stretch: list[int] = []
        stretch_key: str | None = None
        stretch_template = None

        def flush() -> None:
            if stretch_template is None or len(stretch) < vectorized.MIN_RUN:
                return
            if stretch_template.window is not None:
                run = self._make_run(
                    stretch_template.window, col, list(stretch), by_col
                )
            else:
                run = self._make_elementwise_run(
                    stretch_template, col, list(stretch), by_col
                )
            if run is not None:
                claimed.update(run.member_set)
                out.append(run)

        for row in rows:
            pos = (col, row)
            if pos in claimed:              # already part of an earlier span's run
                flush()
                stretch, stretch_key, stretch_template = [], None, None
                continue
            cell = self.sheet.formula_at(pos)
            template = self.cell_evaluator.template_for_cell(cell, col, row)
            runnable = template is not None and (
                template.window is not None or template.elementwise is not None
            )
            key = template.key if runnable else None
            if key is None or key != stretch_key or (stretch and row != stretch[-1] + 1):
                flush()
                stretch = []
                stretch_key = key
                stretch_template = template if key is not None else None
            if key is not None:
                stretch.append(row)
        flush()

    def _make_run(
        self,
        spec,
        col: int,
        run_rows: list[int],
        by_col: dict[int, list[int]],
    ) -> "_TemplateRun | None":
        """Build a run if its geometry rolls and its self-references are
        ordered by the rolling direction; collect its dirty blockers.

        In-run window hits are permitted only when every member's window
        stays strictly on the already-evaluated side of the rolling
        order: strictly above the host for top-down prefix/sliding
        windows, strictly below for the bottom-up suffix shape.  Dirty
        cells inside the windows but outside the run become *blockers* —
        the super-node ordering schedules the run after all of them.
        """
        cols = vectorized.window_cols(spec, col)
        if cols is None:
            return None
        lo_first, hi_first = vectorized.window_rows_at(spec, run_rows[0])
        lo_last, hi_last = vectorized.window_rows_at(spec, run_rows[-1])
        if lo_first > hi_first or lo_last > hi_last or min(lo_first, lo_last) < 1:
            return None
        self_ok = (
            # windows strictly above their host, processed top-down
            (not spec.tail_row.fixed and spec.tail_row.value <= -1)
            # windows strictly below their host, processed bottom-up
            or (spec.tail_row.fixed and not spec.head_row.fixed
                and spec.head_row.value >= 1)
        )
        run_set = {(col, r) for r in run_rows}
        blockers: set[tuple[int, int]] = set()
        w_lo = min(lo_first, lo_last)
        w_hi = max(hi_first, hi_last)
        c1, c2 = cols
        for dirty_col, dirty_rows in by_col.items():
            if dirty_col < c1 or dirty_col > c2:
                continue
            lo = bisect_left(dirty_rows, w_lo)
            hi = bisect_right(dirty_rows, w_hi)
            for row in dirty_rows[lo:hi]:
                pos = (dirty_col, row)
                if pos in run_set:
                    if not self_ok:
                        return None
                else:
                    blockers.add(pos)
        return _TemplateRun(spec, col, run_rows, run_set, blockers)

    def _make_elementwise_run(
        self,
        template,
        col: int,
        run_rows: list[int],
        by_col: dict[int, list[int]],
    ) -> "_ElementwiseRun | None":
        """Build an elementwise run if no reference resolves into it.

        The array sweep reads every input lane before writing any output,
        so a reference into the run's own stretch (a recurrence like
        ``=C1+A2`` filled down C, or a fixed ref at a member) would read
        stale values — such stretches evaluate per cell instead.  Dirty
        cells the lanes read outside the run become blockers.
        """
        first, last = run_rows[0], run_rows[-1]
        blockers: set[tuple[int, int]] = set()
        for col_axis, row_axis in template.elementwise.refs:
            c = col_axis.at(col)
            if c < 1:
                return None             # #REF! on every member: per-cell owns it
            if row_axis.fixed:
                r = row_axis.value
                if r < 1:
                    return None
                if c == col and first <= r <= last:
                    return None         # broadcast input is a run member
                dirty_rows = by_col.get(c)
                if dirty_rows:
                    i = bisect_left(dirty_rows, r)
                    if i < len(dirty_rows) and dirty_rows[i] == r:
                        blockers.add((c, r))
                continue
            if c == col:
                return None             # in-run recurrence
            dirty_rows = by_col.get(c)
            if dirty_rows:
                lo = bisect_left(dirty_rows, first + row_axis.value)
                hi = bisect_right(dirty_rows, last + row_axis.value)
                for r in dirty_rows[lo:hi]:
                    blockers.add((c, r))
        member_set = {(col, r) for r in run_rows}
        return _ElementwiseRun(template, col, run_rows, member_set, blockers)

    def _topological_order(
        self, dirty: set[tuple[int, int]]
    ) -> tuple[
        list[tuple[int, int]],
        set[tuple[int, int]],
        dict[tuple[int, int], list[tuple[int, int]]],
    ]:
        """Kahn's algorithm over the dirty cells' reference structure.

        Returns ``(order, cyclic, pred_map)``: the evaluable cells in
        dependency order, the cells left unordered (in or downstream of a
        cycle), and the dirty-set predecessor adjacency used to extract a
        concrete offending chain.  ``O(D + R)`` for ``D`` dirty cells
        with ``R`` dirty-set reference pairs.
        """
        preds: dict[tuple[int, int], int] = {}
        pred_map: dict[tuple[int, int], list[tuple[int, int]]] = {}
        succs: dict[tuple[int, int], list[tuple[int, int]]] = {}
        dirty_list = list(dirty)
        for pos in dirty_list:
            cell = self.sheet.formula_at(pos)
            count = 0
            for ref in cell.references:
                if ref.sheet is not None and ref.sheet != self.sheet.name:
                    continue
                rng = ref.range
                if rng.contains_cell(*pos):
                    # Self-reference (direct, or a range containing the
                    # cell): a one-cell cycle.  The never-decremented
                    # count keeps the cell unordered.
                    count += 1
                    pred_map.setdefault(pos, []).append(pos)
                if rng.size <= len(dirty):
                    members = [p for p in rng.cells() if p in dirty and p != pos]
                else:
                    members = [p for p in dirty if rng.contains_cell(*p) and p != pos]
                for member in members:
                    count += 1
                    succs.setdefault(member, []).append(pos)
                    pred_map.setdefault(pos, []).append(member)
            preds[pos] = count
        ready = [pos for pos in dirty_list if preds[pos] == 0]
        order: list[tuple[int, int]] = []
        while ready:
            pos = ready.pop()
            order.append(pos)
            for succ in succs.get(pos, ()):  # noqa: B020
                preds[succ] -= 1
                if preds[succ] == 0:
                    ready.append(succ)
        cyclic = {pos for pos in dirty_list if preds[pos] > 0}
        return order, cyclic, pred_map

    @staticmethod
    def _trace_cycle(
        cyclic: set[tuple[int, int]],
        pred_map: dict[tuple[int, int], list[tuple[int, int]]],
    ) -> list[tuple[int, int]]:
        """Walk predecessors inside the unordered set until one repeats.

        Every unordered cell has at least one unordered predecessor (that
        is what kept it unordered), so the walk always closes a cycle.
        The returned chain is in dependency order and closed: the first
        cell is repeated at the end.
        """
        start = min(cyclic)
        seen: dict[tuple[int, int], int] = {}
        chain: list[tuple[int, int]] = []
        pos = start
        while pos not in seen:
            seen[pos] = len(chain)
            chain.append(pos)
            pos = next(p for p in pred_map[pos] if p in cyclic)
        cycle = chain[seen[pos]:]
        cycle.reverse()
        return cycle + [cycle[0]]

    def _evaluate_cell(self, pos: tuple[int, int]) -> None:
        cell = self.sheet.formula_at(pos)
        if self.evaluation == "auto":
            value = self.cell_evaluator.evaluate_cell(
                cell, self.sheet.name, pos[0], pos[1]
            )
        else:
            value = self.cell_evaluator.interpret_cell(
                cell, self.sheet.name, pos[0], pos[1]
            )
        cell.value = value
