"""Incremental recalculation driven by the formula graph.

This is the paper's motivating application (Sec. I): when a cell changes,
the spreadsheet must find its dependents — on the critical path for
returning control to the user — mark them dirty, and recompute them in
dependency order.  The engine works against any
:class:`~repro.graphs.base.FormulaGraph`; plugging TACO in shrinks the
control-return time, which is exactly the paper's headline claim.
"""

from __future__ import annotations

import time
from typing import NamedTuple

from ..core.taco_graph import TacoGraph, dependencies_column_major
from ..formula.errors import CYCLE_ERROR
from ..formula.evaluator import Evaluator
from ..graphs.base import FormulaGraph, expand_cells
from ..grid.range import Range
from ..sheet.sheet import Dependency, Sheet, SheetResolver

__all__ = ["RecalcEngine", "RecalcResult"]


class RecalcResult(NamedTuple):
    """Outcome of one update."""

    dirty_ranges: list[Range]
    dirty_count: int
    recomputed: int
    control_return_seconds: float
    total_seconds: float


class RecalcEngine:
    """A sheet, its formula graph, and an evaluator, kept in sync."""

    def __init__(self, sheet: Sheet, graph: FormulaGraph | None = None):
        self.sheet = sheet
        if graph is None:
            graph = TacoGraph.full()
            graph.build(dependencies_column_major(sheet))
        self.graph = graph
        self.evaluator = Evaluator(SheetResolver(sheet))

    # -- full recomputation ----------------------------------------------------

    def recalculate_all(self) -> int:
        """Evaluate every formula cell from scratch, in dependency order."""
        cells = [pos for pos, _ in self.sheet.formula_cells()]
        order = self._topological_order(set(cells))
        for pos in order:
            self._evaluate_cell(pos)
        return len(order)

    # -- updates ------------------------------------------------------------------

    def set_value(self, target, value) -> RecalcResult:
        """Change a pure value and refresh its dependents."""
        start = time.perf_counter()
        pos = self._position(target)
        self.sheet.set_value(pos, value)
        cell_range = Range.cell(*pos)
        dirty_ranges = self.graph.find_dependents(cell_range)
        control_return = time.perf_counter() - start
        recomputed = self._recompute(dirty_ranges)
        total = time.perf_counter() - start
        return RecalcResult(
            dirty_ranges, sum(r.size for r in dirty_ranges), recomputed,
            control_return, total,
        )

    def set_formula(self, target, text: str) -> RecalcResult:
        """Change a formula: maintain the graph, then refresh dependents."""
        start = time.perf_counter()
        pos = self._position(target)
        cell_range = Range.cell(*pos)
        self.graph.clear_cells(cell_range)
        self.sheet.set_formula(pos, text)
        cell = self.sheet.cell_at(pos)
        for ref in cell.references:
            if ref.sheet is not None and ref.sheet != self.sheet.name:
                continue
            self.graph.add_dependency(Dependency(ref.range, cell_range, ref.cue))
        dirty_ranges = self.graph.find_dependents(cell_range)
        control_return = time.perf_counter() - start
        recomputed = self._recompute(dirty_ranges, extra={pos})
        total = time.perf_counter() - start
        return RecalcResult(
            dirty_ranges, sum(r.size for r in dirty_ranges), recomputed,
            control_return, total,
        )

    def clear_cell(self, target) -> RecalcResult:
        start = time.perf_counter()
        pos = self._position(target)
        cell_range = Range.cell(*pos)
        self.graph.clear_cells(cell_range)
        self.sheet.clear_cell(pos)
        dirty_ranges = self.graph.find_dependents(cell_range)
        control_return = time.perf_counter() - start
        recomputed = self._recompute(dirty_ranges)
        total = time.perf_counter() - start
        return RecalcResult(
            dirty_ranges, sum(r.size for r in dirty_ranges), recomputed,
            control_return, total,
        )

    # -- internals -------------------------------------------------------------------

    @staticmethod
    def _position(target) -> tuple[int, int]:
        from ..sheet.sheet import _coerce_pos

        return _coerce_pos(target)

    def _recompute(self, dirty_ranges: list[Range],
                   extra: set[tuple[int, int]] | None = None) -> int:
        dirty = {
            pos
            for pos in expand_cells(dirty_ranges)
            if (cell := self.sheet.cell_at(pos)) is not None and cell.is_formula
        }
        if extra:
            for pos in extra:
                cell = self.sheet.cell_at(pos)
                if cell is not None and cell.is_formula:
                    dirty.add(pos)
        order = self._topological_order(dirty)
        for pos in order:
            self._evaluate_cell(pos)
        return len(order)

    def _topological_order(self, dirty: set[tuple[int, int]]) -> list[tuple[int, int]]:
        """Kahn's algorithm over the dirty cells' reference structure.

        Cells left unordered (a dependency cycle) are assigned #CYCLE!.
        """
        preds: dict[tuple[int, int], int] = {}
        succs: dict[tuple[int, int], list[tuple[int, int]]] = {}
        dirty_list = list(dirty)
        for pos in dirty_list:
            cell = self.sheet.cell_at(pos)
            count = 0
            for ref in cell.references:
                if ref.sheet is not None and ref.sheet != self.sheet.name:
                    continue
                rng = ref.range
                if rng.size <= len(dirty):
                    members = [p for p in rng.cells() if p in dirty and p != pos]
                else:
                    members = [p for p in dirty if rng.contains_cell(*p) and p != pos]
                for member in members:
                    count += 1
                    succs.setdefault(member, []).append(pos)
            preds[pos] = count
        ready = [pos for pos in dirty_list if preds[pos] == 0]
        order: list[tuple[int, int]] = []
        while ready:
            pos = ready.pop()
            order.append(pos)
            for succ in succs.get(pos, ()):  # noqa: B020
                preds[succ] -= 1
                if preds[succ] == 0:
                    ready.append(succ)
        if len(order) < len(dirty_list):
            for pos in dirty_list:
                if preds[pos] > 0:
                    self.sheet.cell_at(pos).value = CYCLE_ERROR
        return order

    def _evaluate_cell(self, pos: tuple[int, int]) -> None:
        cell = self.sheet.cell_at(pos)
        value = self.evaluator.evaluate(
            cell.formula_ast, self.sheet.name, pos[0], pos[1]
        )
        cell.value = value
