"""Batched editing with one coalesced maintenance + recalculation pass.

The paper's modification experiments (Figs. 12/15) time *individual*
clears; real interactive engines, though, receive edits in bursts — a
paste, a fill-down, an imported table — and the dominant cost is paying
graph maintenance, a dependents query, and a topological sort once per
edit.  :class:`BatchEditSession` makes the burst the unit of work:

1. **Record** — edits are buffered against the session, not the sheet.
   Re-edits of the same cell coalesce (last writer wins), so a cell
   edited ``k`` times costs one maintenance operation instead of ``k``.
2. **Commit** — the buffered state is applied to the sheet; the touched
   cells are coalesced into their exact rectangle cover
   (:func:`~repro.core.maintain.coalesce_cells`) and the graph is updated
   in one deferred-maintenance wave (:func:`~repro.core.maintain.batch_update`):
   all clears, then all inserts in column-major order, then one index
   settle — per-entry delete replay when the batch was small, STR bulk
   repack when it rewrote a large share of the graph.
3. **Recalculate** — the dirty set is computed by a single BFS over the
   compressed graph seeded with every touched range
   (:func:`~repro.core.query.find_dependents_multi`), and
   :meth:`~repro.engine.recalc.RecalcEngine.recompute` re-evaluates just
   those cells in one topological order.

Equivalence contract: a committed batch leaves the sheet values, the
decompressed dependency set, and the spatial indexes in the same state
as applying the same edits one-by-one through
:class:`~repro.engine.recalc.RecalcEngine` — only cheaper.  The
differential test ``tests/engine/test_batch_differential.py`` pins this
for every registered index backend.

Usage::

    engine = RecalcEngine(sheet)
    with engine.begin_batch() as batch:
        batch.set_value("A1", 3.0)
        batch.set_formula("B1", "=A1*2")
        batch.clear_cell("C9")
    print(batch.result.recomputed)

An exception raised by the *body* of the ``with`` block discards the
pending edits; the sheet and graph are untouched (edits are buffered
until commit, so rollback is free).  The commit itself is not
transactional: if the batched edits close a dependency cycle, the
commit — like the per-edit path — applies the edits, maintains the
graph, marks the trapped cells ``#CYCLE!``, and then raises
:class:`~repro.engine.recalc.CircularReferenceError` (``result`` stays
``None`` in that case).
"""

from __future__ import annotations

import time
from typing import NamedTuple

from ..core import maintain
from ..core.query import dependents_of_seeds
from ..grid.range import Range
from ..grid.rangeset import merge_ranges
from ..sheet.sheet import Dependency
from .recalc import RecalcEngine
from .structural import apply_structural_edit, shift_dirty_ranges

__all__ = ["BatchEditSession", "BatchResult"]

_VALUE = "value"
_FORMULA = "formula"
_CLEAR = "clear"


class BatchResult(NamedTuple):
    """What one committed batch did, and what it cost."""

    ops: int                      # raw edit calls recorded
    coalesced_cells: int          # distinct cells they collapsed to
    cleared_ranges: list[Range]   # exact rectangle cover handed to maintenance
    edges_touched: int            # compressed edges removed or replaced
    inserted_dependencies: int    # raw dependencies re-inserted
    repacked: bool                # True when the indexes were bulk-repacked
    dirty_ranges: list[Range]     # transitive dependents of the touched region
    dirty_count: int              # cells in those ranges
    recomputed: int               # formula cells actually re-evaluated
    maintain_seconds: float       # sheet apply + graph maintenance
    recalc_seconds: float         # dirty BFS + topological re-evaluation
    total_seconds: float
    windowed_cells: int = 0       # cells evaluated by rolling-window runs
    compiled_cells: int = 0       # cells evaluated by compiled templates
    structural_ops: int = 0       # row/column inserts/deletes applied first
    elementwise_cells: int = 0    # cells evaluated by numpy array sweeps
    parallel_regions: int = 0     # independent regions the recalc partitioned into
    lookup_index_hits: int = 0    # lookups served by lookaside indexes
    lookup_index_builds: int = 0  # lookaside indexes (re)built by the recalc
    scenario_plan_reuses: int = 0 # scenario replays that reused a shared plan


class BatchEditSession:
    """Coalesces edits and commits them in one maintenance+recalc pass.

    Sessions are single-use: after :meth:`commit` (or a clean ``with``
    exit, which commits) the session refuses further edits; after
    :meth:`discard` (or an exception in the ``with`` block) the buffered
    edits are dropped and nothing was applied.

    ``repack_fraction`` / ``repack_min`` tune when the commit's index
    settle switches from replaying individual deletes to one bulk repack
    (see :meth:`~repro.core.taco_graph.TacoGraph.end_deferred_maintenance`);
    ``recalc=False`` commits maintenance only, leaving stale values (for
    callers that drive recomputation themselves).
    """

    def __init__(
        self,
        engine: RecalcEngine,
        *,
        repack_fraction: float = 0.25,
        repack_min: int = 64,
        recalc: bool = True,
        workbook=None,
    ):
        self.engine = engine
        self.repack_fraction = repack_fraction
        self.repack_min = repack_min
        self.recalc = recalc
        #: Optional Workbook: structural ops recorded on this session then
        #: rewrite references on sibling sheets too (see engine.structural).
        self.workbook = workbook
        self.result: BatchResult | None = None
        self._ops = 0
        self._pending: dict[tuple[int, int], tuple[str, object]] = {}
        self._range_clears: list[Range] = []
        self._structural: list[tuple[str, int, int]] = []
        self._closed = False
        # Register on the *sheet* (any engine over it sees us) so
        # structural edits refuse to run underneath this session's
        # buffered addresses.
        getattr(engine.sheet, "_open_batches", set()).add(self)

    # -- recording ---------------------------------------------------------------

    def set_value(self, target, value) -> None:
        """Buffer a pure-value write (None clears, as on the sheet)."""
        self._record(target, (_VALUE, value))

    def set_formula(self, target, text: str) -> None:
        """Buffer a formula write (leading ``=`` optional)."""
        self._record(target, (_FORMULA, text))

    def clear_cell(self, target) -> None:
        """Buffer erasing one cell."""
        self._record(target, (_CLEAR, None))

    def clear_range(self, rng: Range) -> None:
        """Buffer erasing a whole range.

        Pending per-cell edits inside the range are dropped (the clear
        supersedes them); edits recorded *after* this call win over the
        clear for their cell, preserving order semantics.
        """
        self._check_open()
        self._ops += 1
        for pos in [p for p in self._pending if rng.contains_cell(*p)]:
            del self._pending[pos]
        self._range_clears.append(rng)

    def _record(self, target, op: tuple[str, object]) -> None:
        self._check_open()
        self._ops += 1
        self._pending[RecalcEngine._position(target)] = op

    # -- structural edits ---------------------------------------------------------

    def insert_rows(self, row: int, count: int = 1) -> None:
        """Buffer inserting ``count`` blank rows before ``row``.

        Structural ops are applied *first* at commit, before the buffered
        cell edits — so cell edits recorded after this call use post-edit
        addresses.  Recording a structural op when cell edits are already
        buffered raises: their addresses would silently straddle the
        shift (record structural ops first, or use separate batches).
        """
        self._record_structural("insert_rows", row, count)

    def delete_rows(self, row: int, count: int = 1) -> None:
        """Buffer deleting rows ``[row, row+count)`` (see :meth:`insert_rows`)."""
        self._record_structural("delete_rows", row, count)

    def insert_columns(self, col: int, count: int = 1) -> None:
        """Buffer inserting ``count`` blank columns before ``col``."""
        self._record_structural("insert_columns", col, count)

    def delete_columns(self, col: int, count: int = 1) -> None:
        """Buffer deleting columns ``[col, col+count)``."""
        self._record_structural("delete_columns", col, count)

    def _record_structural(self, op: str, index: int, count: int) -> None:
        self._check_open()
        if index < 1 or count < 1:
            raise ValueError("index and count must be positive")
        if self._pending or self._range_clears:
            raise RuntimeError(
                f"cannot record {op} after cell edits in the same batch: the "
                "buffered addresses would straddle the shift; record "
                "structural ops first (they commit first), or use a new batch"
            )
        self._ops += 1
        self._structural.append((op, index, count))

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("batch session is closed; open a new one")

    @property
    def pending_ops(self) -> int:
        """Raw edit calls recorded so far."""
        return self._ops

    # -- lifecycle ----------------------------------------------------------------

    def __enter__(self) -> "BatchEditSession":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._closed:           # committed or discarded explicitly inside
            return
        if exc_type is None:
            self.commit()
        else:
            self.discard()

    def discard(self) -> None:
        """Drop every buffered edit; the sheet and graph are untouched."""
        self._pending.clear()
        self._range_clears.clear()
        self._structural.clear()
        self._closed = True
        getattr(self.engine.sheet, "_open_batches", set()).discard(self)

    def commit(self) -> BatchResult:
        """Apply the buffered edits: sheet, graph, indexes, then recalc.

        Raises :class:`~repro.engine.recalc.CircularReferenceError` if
        the edits close a dependency cycle — the sheet and graph are
        already updated at that point and the trapped cells are marked
        ``#CYCLE!``, matching per-edit semantics; ``result`` is not set.
        """
        self._check_open()
        self._closed = True
        engine = self.engine
        sheet = engine.sheet
        getattr(sheet, "_open_batches", set()).discard(self)
        if getattr(engine, "journal", None) is not None:
            # Journaled commits must be fully representable and
            # replayable; validate every buffered value and formula
            # *before* applying anything, so a mid-commit failure cannot
            # leave live state the journal never recorded.  (Parses are
            # memoised, so the apply step below pays nothing extra.)
            from ..formula.parser import parse_formula
            from ..io.snapshot import encode_value

            for _, (kind, payload) in self._pending.items():
                if kind == _VALUE:
                    encode_value(payload)
                elif kind == _FORMULA:
                    parse_formula(
                        payload[1:] if payload.startswith("=") else payload
                    )
        start = time.perf_counter()

        # 0. Structural edits (always recorded before cell edits) are
        # applied first, each end-to-end minus the recalculation; their
        # dirty sets are carried forward — re-expressed through every
        # later shift — and re-evaluated together with the cell edits'
        # dirty set in the single recompute below.
        structural_dirty: list[Range] = []
        for op, index, count in self._structural:
            structural_dirty = shift_dirty_ranges(structural_dirty, op, index, count)
            structural_result = apply_structural_edit(
                engine, op, index, count, recalc=False, journal=False,
                workbook=self.workbook,
                repack_fraction=self.repack_fraction, repack_min=self.repack_min,
            )
            structural_dirty.extend(structural_result.dirty_ranges)

        # Resident shard invalidation, decided against pre-apply state:
        # formula installs/clears and range clears change ownership or
        # registry contents (structural ops flagged themselves above);
        # value-only commits — the hot-loop shape — keep shards resident
        # and ride the column-version stamps as plane deltas.
        shard_rt = getattr(engine, "shard_runtime", None)
        if shard_rt is not None:
            formula_at = sheet.formula_at
            if self._range_clears or any(
                kind != _VALUE or formula_at(pos) is not None
                for pos, (kind, _) in self._pending.items()
            ):
                shard_rt.note_formula_change()

        # 1. Sheet state: range clears first (in order), then the
        # surviving per-cell edits — by construction the per-cell buffer
        # already reflects in-order semantics.
        for rng in self._range_clears:
            sheet.clear_range(rng)
        for pos, (kind, payload) in self._pending.items():
            if kind == _VALUE:
                sheet.set_value(pos, payload)
            elif kind == _FORMULA:
                sheet.set_formula(pos, payload)
            else:
                sheet.clear_cell(pos)

        # 2. Graph maintenance, one deferred wave over the exact cover.
        cleared = maintain.coalesce_cells(self._pending) + self._range_clears
        new_deps: list[Dependency] = []
        formula_positions: set[tuple[int, int]] = set()
        for pos, (kind, _) in self._pending.items():
            if kind != _FORMULA:
                continue
            cell = sheet.cell_at(pos)
            if cell is None:
                continue
            formula_positions.add(pos)
            dep_range = Range.cell(*pos)
            for ref in cell.references:
                if ref.sheet is not None and ref.sheet != sheet.name:
                    continue
                new_deps.append(Dependency(ref.range, dep_range, ref.cue))
        graph_result = maintain.batch_update(
            engine.graph, cleared, new_deps,
            repack_fraction=self.repack_fraction, repack_min=self.repack_min,
        )
        maintain_seconds = time.perf_counter() - start

        # The batch is now committed (sheet + graph); make it durable
        # before recomputing dependents.  One record carries the whole
        # commit: structural ops, range clears, and the surviving
        # coalesced cell edits, in commit order.
        journal = getattr(engine, "journal", None)
        if journal is not None:
            journal.record_batch(
                sheet.name,
                self._structural,
                self._range_clears,
                [(pos, kind, payload)
                 for pos, (kind, payload) in self._pending.items()],
                cross_sheet=self.workbook is not None,
            )

        # 3. Dirty set by one BFS over the compressed graph, merged with
        # the structural edits' carried-forward dirty sets, then a single
        # topological re-evaluation.
        recalc_start = time.perf_counter()
        dirty_ranges = self._find_dirty(cleared)
        if structural_dirty:
            dirty_ranges = merge_ranges(
                (structural_dirty, dirty_ranges),
                index=getattr(engine.graph, "index_spec", "rtree"),
            )
        recomputed = 0
        stats = engine.eval_stats
        windowed_before = stats.windowed_cells
        compiled_before = stats.compiled_cells
        elementwise_before = stats.elementwise_cells
        regions_before = stats.parallel_regions
        hits_before = stats.lookup_index_hits
        builds_before = stats.lookup_index_builds
        reuses_before = stats.scenario_plan_reuses
        if self.recalc:
            recomputed = engine.recompute(dirty_ranges, extra=formula_positions)
        recalc_seconds = time.perf_counter() - recalc_start

        self.result = BatchResult(
            ops=self._ops,
            coalesced_cells=len(self._pending),
            cleared_ranges=cleared,
            edges_touched=graph_result.edges_touched,
            inserted_dependencies=graph_result.inserted,
            repacked=graph_result.repacked,
            dirty_ranges=dirty_ranges,
            dirty_count=sum(r.size for r in dirty_ranges),
            recomputed=recomputed,
            maintain_seconds=maintain_seconds,
            recalc_seconds=recalc_seconds,
            total_seconds=time.perf_counter() - start,
            windowed_cells=stats.windowed_cells - windowed_before,
            compiled_cells=stats.compiled_cells - compiled_before,
            structural_ops=len(self._structural),
            elementwise_cells=stats.elementwise_cells - elementwise_before,
            parallel_regions=stats.parallel_regions - regions_before,
            lookup_index_hits=stats.lookup_index_hits - hits_before,
            lookup_index_builds=stats.lookup_index_builds - builds_before,
            scenario_plan_reuses=stats.scenario_plan_reuses - reuses_before,
        )
        return self.result

    def _find_dirty(self, seeds: list[Range]) -> list[Range]:
        return dependents_of_seeds(self.engine.graph, seeds)
