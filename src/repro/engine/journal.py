"""Write-ahead edit journal and crash recovery.

A snapshot (:mod:`repro.io.snapshot`) makes reopening a workbook free of
parse/build/recalc cost; the journal makes it *durable between
snapshots*.  Every committed mutation of an engine — a cell edit, one
:class:`~repro.engine.batch.BatchEditSession` commit, a row/column
structural op — appends one typed record to an append-only file and
fsyncs it, so after a crash the workbook state is exactly

    ``snapshot  +  the journal's complete-record prefix``.

Wire format (version 1), little-endian::

    header   MAGIC(8) = b"TACOJRN1"   version u32
    record   mark(2) = b"JR"   length u32   crc32 u32   payload[length]

Payloads are compact JSON.  Reading stops at the first frame that is
incomplete, fails its checksum, or does not start with the record mark —
the torn tail a crash mid-append leaves behind.  Torn tails are *cut*,
never raised: :func:`read_journal` returns the decoded prefix plus a
``torn`` flag.  A journal whose header names a newer format version is
rejected with an error naming both versions.

Record kinds (see the docs for the field tables):

* ``cell`` — one committed ``set_value`` / ``set_formula`` /
  ``clear_cell`` through :class:`~repro.engine.recalc.RecalcEngine`;
* ``batch`` — one committed batch: its structural ops, range clears,
  and surviving coalesced cell edits, in commit order;
* ``structural`` — one standalone row/column insert/delete through
  :func:`~repro.engine.structural.apply_structural_edit`.

Recovery (:func:`recover`, surfaced as ``Workbook.restore``) loads the
snapshot, replays the record prefix through the *existing* batch and
structural pipelines with recalculation deferred, and then recomputes
only the journal-dirtied cells: one multi-seed BFS over each touched
sheet's compressed graph, one topological re-evaluation.  Untouched
sheets keep their snapshot values and graphs unread.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import IO, NamedTuple

from ..core.query import dependents_of_seeds
from ..grid.range import Range
from ..grid.rangeset import merge_ranges
from ..io.snapshot import (
    Snapshot,
    decode_value,
    encode_value,
    fsync_directory,
    load_snapshot,
)
from ..sheet.structural import STRUCTURAL_OPS
from ..sheet.workbook import Workbook
from .recalc import CircularReferenceError, RecalcEngine
from .structural import apply_structural_edit, shift_dirty_ranges

__all__ = [
    "Journal",
    "JournalFormatError",
    "JournalReadResult",
    "RecoveryResult",
    "read_journal",
    "recover",
]

MAGIC = b"TACOJRN1"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sI")
_FRAME = struct.Struct("<2sII")
_RECORD_MARK = b"JR"


class JournalFormatError(ValueError):
    """Raised when a journal's *header* is unusable (wrong magic, or a
    format version newer than this build).  Torn or corrupt record tails
    are never an error — they are cut at the last complete record."""


class Journal:
    """An append-only, checksummed edit journal.

    Open one and hand it to an engine (``RecalcEngine(sheet, graph,
    journal=journal)``): every committed edit is appended and fsync'd
    before the engine starts recomputing dependents, so the on-disk
    prefix always describes committed state.  ``fsync=False`` trades
    durability for speed (tests, bulk imports).

    ``truncate=True`` starts a fresh journal (the usual move right after
    :func:`~repro.io.snapshot.save_snapshot`); the default appends to an
    existing journal — verifying its header and *cutting any torn tail
    first*, so records appended after a crash-and-restart never sit
    behind garbage bytes that recovery would stop at.

    ``snapshot_id`` (from :class:`~repro.io.snapshot.SnapshotStats`)
    pairs a fresh journal with the snapshot it extends: it is written as
    the journal's first record, and :func:`recover` refuses to replay
    the journal onto any *other* snapshot — catching stale or swapped
    snapshot/journal pairs instead of silently corrupting values.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync: bool = True,
        truncate: bool = False,
        snapshot_id: str | None = None,
    ):
        self.path = path
        self._fsync = fsync
        self.records_written = 0
        #: Complete records already in the file when it was opened for
        #: appending (empty for a fresh journal) — the open pays one full
        #: scan anyway, so callers that need the history (e.g. the CLI's
        #: structural-history check) read it here instead of re-scanning.
        self.preexisting_records: list[dict] = []
        if truncate and os.path.exists(path):
            os.remove(path)
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        if not fresh:
            # Validates magic/version (any existing non-journal file —
            # full or partial — raises rather than being overwritten),
            # then finds the last complete record.  A torn tail (from a
            # crash mid-append) is cut off here: appending after it
            # would make every later record unreadable.  A torn *header*
            # means no record ever committed — start the file over.
            result = read_journal(path)
            self.preexisting_records = result.records
            if result.torn:
                keep = result.valid_bytes if result.valid_bytes >= _HEADER.size else 0
                with open(path, "r+b") as handle:
                    handle.truncate(keep)
                    handle.flush()
                    os.fsync(handle.fileno())
                fresh = keep == 0
        if not fresh and snapshot_id:
            # Reopening an existing journal under a *different* snapshot
            # stamp would append acknowledged edits behind the wrong
            # pairing record; refuse now, before anything is written.
            stamps = [
                record.get("snapshot")
                for record in self.preexisting_records
                if record.get("kind") == "open"
            ]
            if snapshot_id not in stamps:
                raise JournalFormatError(
                    f"journal {path!r} already belongs to snapshot "
                    f"{stamps[0] if stamps else '<unstamped>'}; pass "
                    "truncate=True to start a fresh journal for "
                    f"snapshot {snapshot_id}"
                )
        self._handle: IO[bytes] | None = open(path, "ab")
        if fresh:
            self._handle.write(_HEADER.pack(MAGIC, FORMAT_VERSION))
            self._commit()
            # Make the file's *directory entry* durable too: fsync'd
            # records are worthless if the file itself vanishes.
            if self._fsync:
                fsync_directory(path)
            if snapshot_id:
                self.append({"kind": "open", "snapshot": snapshot_id})

    # -- low-level append ------------------------------------------------------

    def append(self, record: dict) -> None:
        """Frame, append, and (by default) fsync one record."""
        if self._handle is None:
            raise RuntimeError("journal is closed")
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        self._handle.write(
            _FRAME.pack(_RECORD_MARK, len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        )
        self._handle.write(payload)
        self._commit()
        self.records_written += 1

    def _commit(self) -> None:
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    # -- typed records (the engine commit hooks call these) --------------------

    def record_cell(self, sheet: str, op: str, pos: tuple[int, int], payload=None) -> None:
        """One committed per-cell edit (``op`` in value/formula/clear)."""
        record = {"kind": "cell", "sheet": sheet, "op": op, "cell": [pos[0], pos[1]]}
        if op == "value":
            record["payload"] = encode_value(payload)
        elif op == "formula":
            record["payload"] = payload
        self.append(record)

    def record_structural(
        self, sheet: str, op: str, index: int, count: int, *, cross_sheet: bool = False
    ) -> None:
        """One standalone structural op (``cross_sheet``: a workbook-wide
        reference rewrite ran with it)."""
        self.append({
            "kind": "structural", "sheet": sheet, "op": op,
            "index": index, "count": count, "cross_sheet": cross_sheet,
        })

    def record_batch(
        self,
        sheet: str,
        structural,
        clears,
        ops,
        *,
        cross_sheet: bool = False,
    ) -> None:
        """One committed batch: structural ops, range clears, then the
        surviving coalesced cell edits (``(pos, kind, payload)``)."""
        encoded_ops = []
        for pos, kind, payload in ops:
            entry = [pos[0], pos[1], kind,
                     encode_value(payload) if kind == "value" else payload]
            encoded_ops.append(entry)
        self.append({
            "kind": "batch",
            "sheet": sheet,
            "cross_sheet": cross_sheet,
            "structural": [[op, index, count] for op, index, count in structural],
            "clears": [[r.c1, r.r1, r.c2, r.r2] for r in clears],
            "ops": encoded_ops,
        })

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Journal({self.path!r}, records_written={self.records_written})"


class JournalReadResult(NamedTuple):
    """Outcome of one :func:`read_journal`."""

    records: list[dict]     # the decoded complete-record prefix
    torn: bool              # True when trailing bytes were cut
    valid_bytes: int        # offset of the first byte past the last good record


def read_journal(path: str) -> JournalReadResult:
    """Decode the complete-record prefix of the journal at ``path``.

    Never raises on truncation or corruption past the header: the first
    frame that is short, mis-marked, fails its CRC, or does not decode
    is treated as the torn tail and everything from it on is cut.  A
    missing file reads as an empty journal.
    """
    if not os.path.exists(path):
        return JournalReadResult([], False, 0)
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < _HEADER.size:
        # A torn header can only be a prefix of the header a writer was
        # laying down; any other short file is not a journal at all.
        if not _HEADER.pack(MAGIC, FORMAT_VERSION).startswith(data):
            raise JournalFormatError(
                f"not a taco journal ({len(data)} bytes, wrong leading bytes)"
            )
        return JournalReadResult([], len(data) > 0, 0)
    magic, version = _HEADER.unpack(data[: _HEADER.size])
    if magic != MAGIC:
        raise JournalFormatError(f"not a taco journal (magic {magic!r})")
    if version > FORMAT_VERSION:
        raise JournalFormatError(
            f"journal was written by format version {version}, but this "
            f"build reads versions 1..{FORMAT_VERSION}; upgrade to load it"
        )
    records: list[dict] = []
    offset = _HEADER.size
    while True:
        frame_end = offset + _FRAME.size
        if frame_end > len(data):
            # Fewer bytes than a frame header remain: a clean end when
            # zero, a torn tail otherwise.
            return JournalReadResult(records, offset < len(data), offset)
        mark, length, crc = _FRAME.unpack(data[offset:frame_end])
        if mark != _RECORD_MARK:
            return JournalReadResult(records, True, offset)
        payload_end = frame_end + length
        if payload_end > len(data):
            return JournalReadResult(records, True, offset)
        payload = data[frame_end:payload_end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return JournalReadResult(records, True, offset)
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return JournalReadResult(records, True, offset)
        if not isinstance(record, dict):
            return JournalReadResult(records, True, offset)
        records.append(record)
        offset = payload_end


class RecoveryResult(NamedTuple):
    """Outcome of one :func:`recover` (a.k.a. ``Workbook.restore``)."""

    workbook: Workbook
    engines: dict                       # sheet name -> RecalcEngine (touched sheets)
    graphs: dict                        # sheet name -> graph (every snapshot sheet)
    records_applied: int                # journal records replayed
    torn_tail: bool                     # journal had trailing bytes cut
    dirty_count: int                    # cells in the final dirty ranges
    recomputed: int                     # formula cells re-evaluated
    cycle_errors: dict                  # sheet name -> CircularReferenceError


def recover(
    snapshot: "str | IO[bytes] | Snapshot",
    journal: str | None = None,
    *,
    evaluation: str = "auto",
    workers: int | None = None,
    worker_mode: str | None = None,
) -> RecoveryResult:
    """Restore a workbook from ``snapshot`` plus the ``journal`` prefix.

    ``snapshot`` is a path, a binary stream, or an already-loaded
    :class:`~repro.io.snapshot.Snapshot`.  The journal's complete-record
    prefix is replayed through the regular engine/batch/structural
    pipelines with recalculation deferred; afterwards each touched sheet
    pays exactly one multi-seed dependents BFS and one topological
    re-evaluation of its journal-dirtied cells.  A dependency cycle
    closed by the journaled edits is handled like the live paths handle
    it — the trapped cells are marked ``#CYCLE!`` — but reported in
    ``cycle_errors`` instead of raised, so recovery always returns.
    """
    snap = snapshot if isinstance(snapshot, Snapshot) else load_snapshot(snapshot)
    workbook = snap.workbook
    graphs = dict(snap.graphs)
    engines: dict[str, RecalcEngine] = {}
    seeds: dict[str, list[Range]] = {}

    def engine_for(name: str) -> RecalcEngine:
        engine = engines.get(name)
        if engine is None:
            sheet = workbook[name]
            # Replay rides the same partitioned recompute path as live
            # edits when workers are configured (the engine resolves
            # REPRO_RECALC_WORKERS itself when workers is None).
            engine = RecalcEngine(
                sheet, graphs.get(name), evaluation=evaluation,
                workers=workers, worker_mode=worker_mode,
            )
            graphs[name] = engine.graph
            engines[name] = engine
            seeds[name] = []
        return engine

    read = read_journal(journal) if journal is not None else JournalReadResult([], False, 0)
    applied = 0
    for record in read.records:
        if record.get("kind") == "open":
            # The pairing stamp a fresh journal starts with: replaying
            # onto a different snapshot would corrupt values silently.
            expected = record.get("snapshot")
            actual = snap.meta.get("snapshot_id")
            if expected and actual and expected != actual:
                raise JournalFormatError(
                    f"journal was opened for snapshot {expected}, but this "
                    f"snapshot is {actual}; the pair does not match"
                )
            continue
        try:
            _apply_record(workbook, engine_for, seeds, record)
        except JournalFormatError:
            raise
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            # CRC-valid but structurally malformed (a buggy or newer
            # writer): surface one consistent error type, not a raw
            # KeyError from half-way through replay.
            raise JournalFormatError(
                f"malformed journal record {applied + 1} "
                f"(kind {record.get('kind')!r}): {exc!r}"
            ) from exc
        applied += 1

    dirty_count = 0
    recomputed = 0
    cycle_errors: dict[str, CircularReferenceError] = {}
    for name, seed_list in seeds.items():
        if not seed_list:
            continue
        engine = engines[name]
        dirty = merge_ranges(
            (seed_list, dependents_of_seeds(engine.graph, seed_list)),
            index=getattr(engine.graph, "index_spec", "rtree"),
        )
        dirty_count += sum(r.size for r in dirty)
        try:
            recomputed += engine.recompute(dirty)
        except CircularReferenceError as err:
            cycle_errors[name] = err
    return RecoveryResult(
        workbook=workbook,
        engines=engines,
        graphs=graphs,
        records_applied=applied,
        torn_tail=read.torn,
        dirty_count=dirty_count,
        recomputed=recomputed,
        cycle_errors=cycle_errors,
    )


def _apply_record(workbook: Workbook, engine_for, seeds: dict, record: dict) -> None:
    kind = record.get("kind")
    name = record.get("sheet")
    if not isinstance(name, str) or name not in workbook:
        raise JournalFormatError(f"journal record names unknown sheet {name!r}")
    engine = engine_for(name)
    if kind == "cell":
        _apply_cell(engine, record)
        col, row = record["cell"]
        seeds[name].append(Range.cell(int(col), int(row)))
    elif kind == "structural":
        op, index, count = record["op"], int(record["index"]), int(record["count"])
        if op not in STRUCTURAL_OPS:
            raise JournalFormatError(f"unknown structural op {op!r} in journal")
        seeds[name] = shift_dirty_ranges(seeds[name], op, index, count)
        result = apply_structural_edit(
            engine, op, index, count, recalc=False, journal=False,
            workbook=workbook if record.get("cross_sheet") else None,
        )
        seeds[name].extend(result.dirty_ranges)
    elif kind == "batch":
        structural = [(op, int(i), int(n)) for op, i, n in record.get("structural", [])]
        for op, _, _ in structural:
            # Validate before dispatch: op names come from file bytes and
            # must never select an arbitrary session method.
            if op not in STRUCTURAL_OPS:
                raise JournalFormatError(f"unknown structural op {op!r} in journal")
        for op, index, count in structural:
            seeds[name] = shift_dirty_ranges(seeds[name], op, index, count)
        with engine.begin_batch(
            recalc=False,
            workbook=workbook if record.get("cross_sheet") else None,
        ) as batch:
            for op, index, count in structural:
                getattr(batch, op)(index, count)
            for c1, r1, c2, r2 in record.get("clears", []):
                batch.clear_range(Range(int(c1), int(r1), int(c2), int(r2)))
            for col, row, op, payload in record.get("ops", []):
                pos = (int(col), int(row))
                if op == "value":
                    batch.set_value(pos, decode_value(payload))
                elif op == "formula":
                    batch.set_formula(pos, payload)
                else:
                    batch.clear_cell(pos)
        result = batch.result
        seeds[name].extend(result.cleared_ranges)
        seeds[name].extend(result.dirty_ranges)
    else:
        raise JournalFormatError(f"unknown journal record kind {kind!r}")


def _apply_cell(engine: RecalcEngine, record: dict) -> None:
    """Replay one per-cell edit: sheet + graph maintenance, no recalc.

    Delegates to :meth:`RecalcEngine.apply_cell_mutation` — the same
    code the live edit paths run minus the dependents BFS and the
    re-evaluation, which recovery batches into one pass at the end.
    """
    col, row = record["cell"]
    pos = (int(col), int(row))
    op = record.get("op")
    if op == "value":
        payload = decode_value(record.get("payload"))
    elif op == "formula":
        payload = record["payload"]
    elif op == "clear":
        payload = None
    else:
        raise JournalFormatError(f"unknown cell op {op!r}")
    engine.apply_cell_mutation(pos, op, payload)
