"""Persistent sharded recalculation: workers that *own* plane slices.

PR 7's partitioned scheduler (:mod:`repro.engine.parallel`) re-ships each
region's value planes and template families to a fresh pool worker on
every recalculation, so on hot edit loops the freight — not the
evaluation — dominates.  This module replaces that per-recalc freight
with a *persistent shard runtime*: column-major slices of a sheet's
value planes are assigned to long-lived worker processes that keep a
resident replica of their slice (planes + formulas + a graph-less shadow
engine).  After a one-time bootstrap, a recalculation ships only

* **plane deltas** — columns whose PR 8 content-version stamp moved
  since they were last shipped (:meth:`ColumnarStore.export_plane_delta`
  / :meth:`~ColumnarStore.apply_plane_delta`), and
* **cross-shard patches** — the upstream dirty cells a shard's nodes
  actually read, packed as typed scalar column runs
  (:meth:`~ColumnarStore.pack_result_columns`),

and receives packed result deltas back.  Ownership invariants:

* every formula column is owned by exactly one shard (or by the parent:
  columns with cross-sheet references or whole-row-style spans stay
  home), so a column is only ever *written* by its owner;
* a shard's resident store covers its **read closure** — owned columns
  plus every column its formulas reference — so plane deltas are the
  only steady-state freight;
* cross-shard ordering edges are the message boundary: the plan is cut
  into waves at executor changes, and a wave's results are patched to
  downstream shards before their wave dispatches.

Freshness is pinned by the PR 8 stamps.  A shard skips a closure
column's plane when the column's version equals what it last shipped,
*or* when everything since the last ship happened inside the current
recalculation (mid-recalc merges are exactly covered by patches).
Formula edits, batch commits that touch formulas, and structural edits
mark the runtime stale (:meth:`ShardRuntime.note_formula_change` /
:meth:`~ShardRuntime.note_structural_change`); a store-epoch move is
detected independently.  Either triggers a re-bootstrap — resharding is
a new bootstrap, never an in-place mutation of ownership.

Residency uses one single-worker process pool per shard *slot*
(module-level, shared by every runtime in the process, so hundreds of
short-lived engines under ``REPRO_RECALC_SHARDS`` cost at most
``max(shards)`` processes).  Workers key residents by
``(runtime id, shard index)`` plus a bootstrap token; a token or
resident mismatch answers ``("stale",)`` and the parent falls back
serially, then re-bootstraps.  Every fault — worker death mid-delta, a
stale resident, an unpicklable delta/patch payload, an unpicklable
reply — falls back to serial re-execution of the affected nodes in the
parent (idempotent: shards own disjoint cells) and is reported through
``EvalStats.shard_fallbacks`` / ``serial_fallbacks`` /
``fallback_reason``.  Values and the deterministic cell counters stay
bit-identical to serial by construction: every plan node executes
exactly once, by exactly one engine, through the same tier dispatch,
and results merge on the same typed-column path in deterministic order.

:class:`ScenarioReplicas` rides the same residency for
:mod:`repro.engine.scenario`: each pool slot keeps a full replica of the
sweep's read surface and replays scenario chunks against it, so repeated
sweeps ship seed rows and plane deltas instead of whole payloads.
"""

from __future__ import annotations

import os
import pickle
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from itertools import count
from typing import TYPE_CHECKING

from .parallel import FAULT_ENV

if TYPE_CHECKING:  # pragma: no cover
    from .recalc import RecalcEngine

__all__ = ["ScenarioReplicas", "ShardRuntime", "shutdown_slot_pools"]

#: Reference spans wider than this are whole-row-style: enumerating the
#: closure would ship everything, so the column stays parent-owned.
#: (Same cutoff the per-recalc freight path uses.)
_WIDE_SPAN = 4096

_RUNTIME_IDS = count(1)

# -- shard slot pools ----------------------------------------------------------
#
# ProcessPoolExecutor cannot route a task to a chosen worker, and
# residency *is* routing — so each shard slot gets its own
# max_workers=1 pool.  Slots are shared across runtimes (shard i of
# every runtime lands on slot i); the worker process multiplexes
# residents by key.

_SLOT_POOLS: dict[int, ProcessPoolExecutor] = {}


def _slot_pool(slot: int) -> ProcessPoolExecutor:
    pool = _SLOT_POOLS.get(slot)
    if pool is None:
        pool = _SLOT_POOLS[slot] = ProcessPoolExecutor(max_workers=1)
    return pool


def _discard_slot(slot: int) -> None:
    pool = _SLOT_POOLS.pop(slot, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_slot_pools() -> None:
    """Shut down every shard slot pool (all residents are lost; the next
    bootstrap starts clean).  Called by
    :func:`repro.engine.parallel.shutdown_pools`."""
    for slot in list(_SLOT_POOLS):
        _discard_slot(slot)


def _send_drops(runtime_id: int, shards: int) -> None:
    """Best-effort resident eviction when a runtime is garbage-collected.

    Never creates a pool and never blocks: if the slot pool is gone the
    resident died with it, and a broken pool simply keeps its corpse.
    """
    for slot in range(shards):
        pool = _SLOT_POOLS.get(slot)
        if pool is None:
            continue
        try:
            pool.submit(_shard_request, pickle.dumps(
                ("drop", (runtime_id, slot)), pickle.HIGHEST_PROTOCOL,
            ))
        except Exception:
            pass


# -- worker-side residency -----------------------------------------------------


class _Resident:
    """One shard's (or scenario replica's) worker-side state."""

    __slots__ = ("token", "sheet", "engine", "plan", "seeds")

    def __init__(self, token, sheet, engine, plan=None, seeds=None):
        self.token = token
        self.sheet = sheet
        self.engine = engine
        self.plan = plan
        self.seeds = seeds


#: Residents hosted by *this* worker process, keyed by
#: ``(runtime id, shard index)``.  Runtime ids are unique per parent
#: process lifetime, and a worker only ever serves one parent.
_RESIDENTS: dict[tuple[int, int], _Resident] = {}


def _spec_positions(spec) -> list[tuple[int, int]]:
    positions: list[tuple[int, int]] = []
    for node in spec:
        if node[0] == "c":
            positions.append((node[1], node[2]))
        else:
            positions.extend((node[1], row) for row in range(node[2], node[3] + 1))
    return positions


def _shard_request(payload: bytes) -> bytes:
    """The single worker entry point for the shard message protocol.

    ``("boot", key, token, name, planes, families, loose, spec, seeds)``
        (re)build the resident: install planes, register formulas (the
        same shifted-exemplar family protocol per-recalc freight uses),
        wrap in a graph-less shadow engine.  ``spec``/``seeds`` are the
        scenario-replica extras (a frozen plan and the seed positions).
    ``("exec", key, token, planes, patches, spec)``
        apply the plane delta and cross-shard patches, execute the spec,
        return ``("ok", packed_results, counter_deltas, count)``.
    ``("replay", key, token, planes, rows, out_pos)``
        scenario chunk replay against the resident plan.
    ``("drop", key)``
        evict the resident.

    Fault hooks (``REPRO_PARALLEL_FAULT``) fire only on exec/replay —
    never on boot — so injected faults always hit a *resident* shard:
    ``die`` hard-exits (worker death mid-delta), ``garbage`` returns
    unpicklable bytes, ``stale`` simulates a lost/stale resident.  A
    token mismatch or missing resident answers ``("stale",)`` for real.
    """
    msg = pickle.loads(payload)
    kind = msg[0]
    if kind == "drop":
        _RESIDENTS.pop(msg[1], None)
        return pickle.dumps(("ok",), pickle.HIGHEST_PROTOCOL)
    if kind == "boot":
        from .parallel import _plan_from_spec, _rebuild_worker_sheet
        from .recalc import RecalcEngine

        _, key, token, name, planes, families, loose, spec, seeds = msg
        sheet, _positions = _rebuild_worker_sheet(
            "columnar", name, planes, families, loose
        )
        engine = RecalcEngine.plan_executor(sheet)
        plan = None if spec is None else _plan_from_spec(engine, sheet, spec)
        _RESIDENTS[key] = _Resident(token, sheet, engine, plan, seeds)
        return pickle.dumps(("ok",), pickle.HIGHEST_PROTOCOL)

    fault = os.environ.get(FAULT_ENV)
    if fault == "die":
        os._exit(11)
    _, key, token = msg[0], msg[1], msg[2]
    resident = _RESIDENTS.get(key)
    if fault == "stale" or resident is None or resident.token != token:
        return pickle.dumps(("stale",), pickle.HIGHEST_PROTOCOL)
    engine = resident.engine
    sheet = resident.sheet
    store = sheet._cells
    before = engine.eval_stats.counter_snapshot()

    if kind == "exec":
        planes, patches, spec = msg[3], msg[4], msg[5]
        if planes:
            store.apply_plane_delta(planes)
        if patches:
            store.merge_result_columns(patches)
        from .parallel import _plan_from_spec

        plan = _plan_from_spec(engine, sheet, spec)
        executed = engine._execute_plan(plan)
        if fault == "garbage":
            return b"\x00 injected unpicklable shard result"
        packed = store.pack_result_columns(_spec_positions(spec))
        after = engine.eval_stats.counter_snapshot()
        deltas = tuple(a - b for a, b in zip(after, before))
        return pickle.dumps(
            ("ok", packed, deltas, executed), pickle.HIGHEST_PROTOCOL
        )

    # replay: scenario chunk against the resident plan
    planes, rows, out_pos = msg[3], msg[4], msg[5]
    if planes:
        store.apply_plane_delta(planes)
    set_value = sheet.set_value
    get_value = sheet.get_value
    results = []
    for row in rows:
        for pos, value in zip(resident.seeds, row):
            set_value(pos, value)
        engine._execute_plan(resident.plan)
        results.append([get_value(pos) for pos in out_pos])
    if fault == "garbage":
        return b"\x00 injected unpicklable replay result"
    after = engine.eval_stats.counter_snapshot()
    deltas = tuple(a - b for a, b in zip(after, before))
    return pickle.dumps(
        ("ok", results, deltas, len(rows)), pickle.HIGHEST_PROTOCOL
    )


# -- parent-side freight helpers -----------------------------------------------


def _column_freight(sheet, positions):
    """Formulas of ``positions`` as (families, loose) — the shifted
    -exemplar compression per-recalc freight uses, minus the cross-sheet
    check (ownership already excluded those columns)."""
    families: dict[str, tuple] = {}
    loose = []
    formula_at = sheet.formula_at
    for pos in positions:
        cell = formula_at(pos)
        key = cell.template_key(*pos)
        if not key:
            loose.append((pos, cell.formula_ast))
            continue
        family = families.get(key)
        if family is None:
            families[key] = (pos, key, cell.formula_ast, [pos])
        else:
            family[3].append(pos)
    return list(families.values()), loose


def _spec_for(nodes) -> list[tuple]:
    from .recalc import _TemplateRun

    spec: list[tuple] = []
    for node in nodes:
        if type(node) is tuple:
            spec.append(("c", node[0], node[1]))
        else:
            kind = "w" if type(node) is _TemplateRun else "e"
            spec.append((kind, node.col, node.rows[0], node.rows[-1]))
    return spec


def _node_members(node):
    if type(node) is tuple:
        return (node,)
    return [(node.col, row) for row in node.rows]


class _Replica:
    """Parent-side view of one resident (shard or scenario slot)."""

    __slots__ = ("token", "shipped", "booted")

    def __init__(self) -> None:
        self.token = 0
        self.shipped: dict[int, int] = {}
        self.booted = False


def _ship_delta(store, replica: _Replica, closure, base_versions=None):
    """The plane delta a resident needs: columns whose version moved past
    the last ship — except columns whose every change since that ship
    happened inside the current recalculation (``base_versions`` holds
    the at-execute-start stamps; such changes are mid-recalc merges,
    covered exactly by patches for the cells the shard reads)."""
    since: dict[int, int] = {}
    column_version = store.column_version
    for col, last in replica.shipped.items():
        base = None if base_versions is None else base_versions.get(col)
        if base is not None and last >= base:
            since[col] = column_version(col)  # synced this recalc: skip
        else:
            since[col] = last
    planes, versions = store.export_plane_delta(since, closure)
    for col in planes:
        replica.shipped[col] = versions[col]
    return planes


# -- the shard runtime ---------------------------------------------------------


class ShardRuntime:
    """Persistent column-sliced recalculation attached to one engine.

    Created by ``RecalcEngine(shards=N)`` (or ``REPRO_RECALC_SHARDS``)
    for auto-mode engines over columnar sheets.  Bootstrap is lazy — the
    first eligible recalculation pays it — and ownership maps contiguous
    column slices, balanced by formula count, onto ``shards`` slot
    pools.  ``min_dirty`` (``REPRO_PARALLEL_MIN_DIRTY``) keeps small
    recalculations serial, exactly like the pooled scheduler.
    """

    __slots__ = ("shards", "min_dirty", "_id", "_owner", "_closures",
                 "_members", "_replicas", "_boot_epoch", "_stale",
                 "_lost", "__weakref__")

    def __init__(self, shards: int, *, min_dirty: int | None = None):
        if min_dirty is None:
            min_dirty = int(
                os.environ.get("REPRO_PARALLEL_MIN_DIRTY", "") or 64
            )
        self.shards = int(shards)
        self.min_dirty = int(min_dirty)
        self._id = next(_RUNTIME_IDS)
        self._owner: dict[int, int] | None = None
        self._closures: list[set[int]] = []
        self._members: list[list[tuple[int, int]]] = []
        self._replicas: list[_Replica] = [_Replica() for _ in range(self.shards)]
        self._boot_epoch: int | None = None
        self._stale = False
        self._lost: set[int] = set()
        weakref.finalize(self, _send_drops, self._id, self.shards)

    def eligible(self, dirty_count: int) -> bool:
        return dirty_count >= self.min_dirty

    # -- invalidation hooks ----------------------------------------------------

    def note_formula_change(self) -> None:
        """A formula was added, replaced, or cleared: ownership and the
        resident formula registries are stale — re-bootstrap before the
        next sharded dispatch.  (Pure value edits never land here; the
        version stamps carry those as plane deltas.)"""
        self._stale = True

    def note_structural_change(self) -> None:
        """Rows/columns moved: every resident's geometry is wrong.
        The store epoch also moved, but the flag keeps the trigger
        explicit (and covers object-store sheets with no epoch)."""
        self._stale = True

    # -- bootstrap -------------------------------------------------------------

    def _assign_ownership(self, engine: "RecalcEngine"):
        """Ownership + closures: contiguous column slices balanced by
        formula count; cross-sheet / whole-row-span columns stay with
        the parent (-1)."""
        sheet = engine.sheet
        store = sheet._cells
        col_members: dict[int, list[tuple[int, int]]] = {}
        col_reads: dict[int, set[int]] = {}
        parent_cols: set[int] = set()
        sheet_name = sheet.name
        for pos, cell in store.formula_items():
            col = pos[0]
            col_members.setdefault(col, []).append(pos)
            if col in parent_cols:
                continue
            reads = col_reads.setdefault(col, set())
            for ref in cell.references:
                if ref.sheet is not None and ref.sheet != sheet_name:
                    parent_cols.add(col)
                    break
                if ref.range.c2 - ref.range.c1 > _WIDE_SPAN:
                    parent_cols.add(col)
                    break
                reads.update(range(ref.range.c1, ref.range.c2 + 1))

        shardable = sorted(c for c in col_members if c not in parent_cols)
        owner: dict[int, int] = {c: -1 for c in parent_cols}
        slices: list[list[int]] = [[] for _ in range(self.shards)]
        total = sum(len(col_members[c]) for c in shardable)
        acc = 0
        si = 0
        for col in shardable:
            if si < self.shards - 1 and acc >= total * (si + 1) / self.shards:
                si += 1
            slices[si].append(col)
            acc += len(col_members[col])

        closures: list[set[int]] = []
        members: list[list[tuple[int, int]]] = []
        for j, cols in enumerate(slices):
            closure: set[int] = set()
            mem: list[tuple[int, int]] = []
            for col in cols:
                owner[col] = j
                closure.add(col)
                closure.update(col_reads[col])
                mem.extend(col_members[col])
            closures.append(closure)
            members.append(sorted(mem))
        return owner, closures, members

    def _bootstrap(self, engine: "RecalcEngine", only=None) -> None:
        """(Re)ship residents.  ``only`` restricts to lost shards after a
        fault; any staleness or epoch move forces the full pass, which
        recomputes ownership from scratch (resharding *is* a new
        bootstrap)."""
        sheet = engine.sheet
        store = sheet._cells
        stats = engine.eval_stats
        epoch = getattr(store, "epoch", None)
        full = (
            only is None or self._stale or self._owner is None
            or epoch != self._boot_epoch
        )
        if full:
            self._owner, self._closures, self._members = (
                self._assign_ownership(engine)
            )
            targets = range(self.shards)
        else:
            targets = sorted(only)

        pending = []
        for j in targets:
            members = self._members[j]
            replica = self._replicas[j]
            replica.booted = False
            replica.shipped = {}
            if not members:
                continue
            replica.token += 1
            planes, versions = store.export_plane_delta({}, self._closures[j])
            families, loose = _column_freight(sheet, members)
            try:
                payload = pickle.dumps(
                    ("boot", (self._id, j), replica.token, sheet.name,
                     planes, families, loose, None, None),
                    pickle.HIGHEST_PROTOCOL,
                )
            except Exception:
                self._disown(j)
                continue
            try:
                future = _slot_pool(j).submit(_shard_request, payload)
            except BrokenProcessPool:
                _discard_slot(j)
                try:
                    future = _slot_pool(j).submit(_shard_request, payload)
                except Exception:
                    self._disown(j)
                    continue
            pending.append((j, future, versions))

        for j, future, versions in pending:
            try:
                reply = pickle.loads(future.result())
            except BaseException:
                _discard_slot(j)
                self._disown(j)
                continue
            if reply != ("ok",):  # pragma: no cover - defensive
                self._disown(j)
                continue
            replica = self._replicas[j]
            replica.shipped = versions
            replica.booted = True
            stats.shard_bootstraps += 1

        self._boot_epoch = epoch
        self._stale = False
        self._lost.clear()

    def _disown(self, j: int) -> None:
        """Shard ``j`` could not be shipped: its columns run in the
        parent until the next bootstrap recomputes ownership."""
        for col, owner in self._owner.items():
            if owner == j:
                self._owner[col] = -1
        self._members[j] = []
        self._replicas[j].booted = False

    # -- execution -------------------------------------------------------------

    def execute(self, engine: "RecalcEngine", plan, succs) -> int | None:
        """Run ``plan`` across the resident shards; None → caller falls
        through to the pooled/serial paths (nothing sharded here).

        The plan is cut into waves at cross-executor edges: within a
        wave, shard futures dispatch first, parent-owned nodes execute
        locally, then results merge in shard order (deterministic).
        Wave results that cross shard boundaries ship as typed scalar
        patches with the downstream shard's next dispatch.
        """
        sheet = engine.sheet
        store = sheet._cells
        stats = engine.eval_stats
        if (
            self._stale or self._owner is None or self._lost
            or getattr(store, "epoch", None) != self._boot_epoch
        ):
            self._bootstrap(engine, only=self._lost or None)
        owner = self._owner

        node_shard = []
        any_shard = False
        for node in plan:
            col = node[0] if type(node) is tuple else node.col
            j = owner.get(col, -1)
            if j >= 0 and not self._replicas[j].booted:
                j = -1
            node_shard.append(j)
            if j >= 0:
                any_shard = True
        if not any_shard:
            return None

        # Stage assignment: an edge whose endpoints run on different
        # executors forces the successor into a later wave; same-executor
        # edges keep their plan order inside the wave.
        index = {node: i for i, node in enumerate(plan)}
        stage = [0] * len(plan)
        for i, node in enumerate(plan):
            targets = succs.get(node)
            if not targets:
                continue
            si = stage[i]
            for target in targets:
                k = index.get(target)
                if k is None:
                    continue
                need = si + (1 if node_shard[k] != node_shard[i] else 0)
                if stage[k] < need:
                    stage[k] = need

        nwaves = max(stage) + 1
        waves: list[list[int]] = [[] for _ in range(nwaves)]
        for i, s in enumerate(stage):
            waves[s].append(i)

        base_versions = {
            col: store.column_version(col)
            for j in range(self.shards) if self._replicas[j].booted
            for col in self._closures[j]
        }
        pending_patches: dict[int, set[tuple[int, int]]] = {}
        fell_back: set[int] = set()
        total = 0

        for s, wave in enumerate(waves):
            by_shard: dict[int, list] = {}
            parent_nodes: list = []
            for i in wave:
                j = node_shard[i]
                if j < 0 or j in fell_back:
                    parent_nodes.append(plan[i])
                else:
                    by_shard.setdefault(j, []).append(plan[i])

            futures = []
            stats.parallel_regions += len(by_shard)
            for j in sorted(by_shard):
                nodes = by_shard[j]
                replica = self._replicas[j]
                spec = _spec_for(nodes)
                patch_positions = pending_patches.pop(j, None)
                patches = (
                    store.pack_result_columns(sorted(patch_positions))
                    if patch_positions else []
                )
                planes = _ship_delta(
                    store, replica, self._closures[j], base_versions
                )
                try:
                    payload = pickle.dumps(
                        ("exec", (self._id, j), replica.token, planes,
                         patches, spec),
                        pickle.HIGHEST_PROTOCOL,
                    )
                except Exception:
                    total += self._fall_back(
                        engine, j, nodes, "patch-pickle-failed", fell_back
                    )
                    continue
                try:
                    future = _slot_pool(j).submit(_shard_request, payload)
                except BrokenProcessPool:
                    _discard_slot(j)
                    try:
                        future = _slot_pool(j).submit(_shard_request, payload)
                    except Exception:
                        total += self._fall_back(
                            engine, j, nodes, "worker-died", fell_back
                        )
                        continue
                futures.append((j, nodes, future, len(payload)))

            if parent_nodes:
                total += engine._execute_plan(parent_nodes)

            for j, nodes, future, nbytes in futures:
                reason = None
                reply = None
                try:
                    raw = future.result()
                except BaseException:
                    _discard_slot(j)
                    reason = "worker-died"
                else:
                    try:
                        reply = pickle.loads(raw)
                    except Exception:
                        reason = "unpickle-failed"
                if reason is None and reply[0] != "ok":
                    reason = "stale-epoch"
                if reason is not None:
                    total += self._fall_back(engine, j, nodes, reason, fell_back)
                    continue
                _, packed, deltas, executed = reply
                store.merge_result_columns(packed)
                replica = self._replicas[j]
                for col, _rows, _tags, _values, _side in packed:
                    # The resident's copy of its own results provably
                    # equals the parent's post-merge column.
                    replica.shipped[col] = store.column_version(col)
                stats.absorb_counters(deltas)
                stats.shard_delta_bytes += nbytes
                stats.parallel_dispatches += 1
                total += executed

            if s + 1 < nwaves:
                for i in wave:
                    targets = succs.get(plan[i])
                    if not targets:
                        continue
                    for target in targets:
                        k = index.get(target)
                        if k is None:
                            continue
                        tj = node_shard[k]
                        if tj >= 0 and tj != node_shard[i] and tj not in fell_back:
                            pending_patches.setdefault(tj, set()).update(
                                _node_members(plan[i])
                            )
        return total

    def _fall_back(self, engine, j, nodes, reason, fell_back) -> int:
        stats = engine.eval_stats
        stats.serial_fallbacks += 1
        stats.shard_fallbacks += 1
        stats.fallback_reason = reason
        fell_back.add(j)
        self._lost.add(j)
        return engine._execute_plan(nodes)


# -- scenario replicas ---------------------------------------------------------


class ScenarioReplicas:
    """Resident what-if replicas: one full copy of the sweep's read
    surface per pool slot, booted once, replayed per chunk.

    Built lazily by :meth:`ScenarioEngine._run_process`.  Each replica
    ships the scenario plan spec at boot (the worker materialises it
    once); a sweep then ships only plane deltas — columns the parent
    changed since the last ship — plus the seed rows and output
    positions.  Replays are valid across sweeps without restores because
    every replay deterministically overwrites the whole dirty frontier
    before reading it, and the parent sheet is never mutated by the
    process path (so shipped stamps stay honest; a serial fallback's
    restore bumps versions and forces a re-ship by itself).
    """

    __slots__ = ("workers", "_id", "_replicas", "__weakref__")

    def __init__(self, workers: int):
        self.workers = int(workers)
        self._id = next(_RUNTIME_IDS)
        self._replicas = [_Replica() for _ in range(self.workers)]
        weakref.finalize(self, _send_drops, self._id, self.workers)

    def boot(self, sheet, cols, families, loose, spec, seeds, stats) -> None:
        """Ensure every slot hosts a live replica; no-op when already
        booted.  A slot that cannot boot is left unbooted — its chunks
        fall back serially at replay time."""
        store = sheet._cells
        planes, versions = store.export_plane_delta({}, cols)
        pending = []
        for slot, replica in enumerate(self._replicas):
            if replica.booted:
                continue
            replica.token += 1
            replica.shipped = {}
            # May raise on unpicklable freight; the caller treats that as
            # the whole-sweep "payload-pickle-failed" serial fallback.
            payload = pickle.dumps(
                ("boot", (self._id, slot), replica.token, sheet.name,
                 planes, families, loose, spec, seeds),
                pickle.HIGHEST_PROTOCOL,
            )
            try:
                future = _slot_pool(slot).submit(_shard_request, payload)
            except BrokenProcessPool:
                _discard_slot(slot)
                try:
                    future = _slot_pool(slot).submit(_shard_request, payload)
                except Exception:
                    continue
            pending.append((slot, future, versions))
        for slot, future, versions in pending:
            try:
                reply = pickle.loads(future.result())
            except BaseException:
                _discard_slot(slot)
                continue
            if reply != ("ok",):  # pragma: no cover - defensive
                continue
            replica = self._replicas[slot]
            replica.shipped = dict(versions)
            replica.booted = True
            stats.shard_bootstraps += 1

    def replay_chunks(self, sheet, cols, chunks, out_pos, stats):
        """Fan ``chunks`` across the resident slots (chunk *i* → slot
        *i*): all dispatches in flight before any result is awaited.
        Returns one ``(reason, rows)`` pair per chunk, ``reason=None`` on
        success — failed chunks carry their fallback reason and mark the
        slot for a re-boot on the next sweep."""
        store = sheet._cells
        pending: list[tuple[str | None, object, int]] = []
        for slot, chunk in enumerate(chunks):
            replica = self._replicas[slot]
            if not replica.booted:
                pending.append(("stale-epoch", None, 0))
                continue
            planes = _ship_delta(store, replica, cols)
            try:
                payload = pickle.dumps(
                    ("replay", (self._id, slot), replica.token, planes,
                     chunk, out_pos),
                    pickle.HIGHEST_PROTOCOL,
                )
            except Exception:
                # The delta was already stamped as shipped but never
                # arrived; only a re-boot makes the stamps honest again.
                replica.booted = False
                pending.append(("payload-pickle-failed", None, 0))
                continue
            try:
                future = _slot_pool(slot).submit(_shard_request, payload)
            except BrokenProcessPool:
                _discard_slot(slot)
                try:
                    future = _slot_pool(slot).submit(_shard_request, payload)
                except Exception:
                    replica.booted = False
                    pending.append(("worker-died", None, 0))
                    continue
            pending.append((None, future, len(payload)))

        results = []
        for slot, (reason, future, nbytes) in enumerate(pending):
            if reason is not None:
                results.append((reason, None))
                continue
            replica = self._replicas[slot]
            try:
                raw = future.result()
            except BaseException:
                _discard_slot(slot)
                replica.booted = False
                results.append(("worker-died", None))
                continue
            try:
                reply = pickle.loads(raw)
            except Exception:
                results.append(("unpickle-failed", None))
                continue
            if reply[0] != "ok":
                replica.booted = False
                results.append(("stale-epoch", None))
                continue
            _, rows, deltas, _replays = reply
            stats.absorb_counters(deltas)
            stats.shard_delta_bytes += nbytes
            results.append((None, rows))
        return results
