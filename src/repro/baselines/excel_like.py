"""An Excel-like engine: shared-formula storage, decompress-to-query.

Stands in for MS Excel in the Sec. VI-E comparison.  Two documented Excel
behaviours are modelled:

* **Shared formulae.**  Excel detects identical formulae (identical once
  references are expressed relative to the host cell, i.e. in R1C1 form)
  and stores duplicates as pointers to the first formula.  We canonicalise
  each formula to its R1C1 text and group cells by it, so a 10,000-row
  autofilled column costs one stored formula plus a membership list.
* **Querying decompresses.**  Excel does not exploit that compact storage
  for dependency traversal; the paper measures ``Range.Dependents`` to be
  *slower* than even NoComp, and hypothesises decompression overhead.  We
  model that: every query first materialises the full cell-level
  dependency adjacency from the shared groups (the decompression), then
  runs a plain BFS over it.
"""

from __future__ import annotations

from ..formula.ast_nodes import CellNode, Node, RangeNode, walk
from ..formula.r1c1 import to_r1c1
from ..graphs.base import Budget, FormulaGraph, GraphStats
from ..grid.range import Range
from ..sheet.sheet import Sheet

__all__ = ["ExcelLikeEngine", "to_r1c1"]


class _FormulaGroup:
    """One stored formula and the cells sharing it."""

    __slots__ = ("r1c1", "anchor_ast", "anchor_pos", "members")

    def __init__(self, r1c1: str, anchor_ast: Node, anchor_pos: tuple[int, int]):
        self.r1c1 = r1c1
        self.anchor_ast = anchor_ast
        self.anchor_pos = anchor_pos
        self.members: list[tuple[int, int]] = []

    def member_references(self, col: int, row: int) -> list[Range]:
        """The ranges referenced by the group formula hosted at (col, row)."""
        out: list[Range] = []
        dc = col - self.anchor_pos[0]
        dr = row - self.anchor_pos[1]
        for node in walk(self.anchor_ast):
            if isinstance(node, CellNode):
                ref = node.ref
                c = ref.col if ref.col_fixed else ref.col + dc
                r = ref.row if ref.row_fixed else ref.row + dr
                if c >= 1 and r >= 1:
                    out.append(Range.cell(c, r))
            elif isinstance(node, RangeNode):
                hc = node.head.col if node.head.col_fixed else node.head.col + dc
                hr = node.head.row if node.head.row_fixed else node.head.row + dr
                tc = node.tail.col if node.tail.col_fixed else node.tail.col + dc
                tr = node.tail.row if node.tail.row_fixed else node.tail.row + dr
                if min(hc, tc) >= 1 and min(hr, tr) >= 1:
                    out.append(Range(min(hc, tc), min(hr, tr), max(hc, tc), max(hr, tr)))
        return out


class ExcelLikeEngine(FormulaGraph):
    """Shared-formula workbook with scan-based dependents tracing."""

    name = "Excel"

    def __init__(self):
        self._groups: dict[str, _FormulaGroup] = {}
        self._cell_group: dict[tuple[int, int], _FormulaGroup] = {}

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_sheet(cls, sheet: Sheet, budget: Budget | None = None) -> "ExcelLikeEngine":
        engine = cls()
        for (col, row), cell in sheet.formula_cells():
            if budget is not None:
                budget.check()
            engine.add_formula(col, row, cell.formula_ast)
        return engine

    def add_formula(self, col: int, row: int, ast: Node) -> None:
        key = to_r1c1(ast, col, row)
        group = self._groups.get(key)
        if group is None:
            group = _FormulaGroup(key, ast, (col, row))
            self._groups[key] = group
        group.members.append((col, row))
        self._cell_group[(col, row)] = group

    def clear_cells(self, rng: Range, budget: Budget | None = None) -> None:
        doomed = [pos for pos in self._cell_group if rng.contains_cell(*pos)]
        for pos in doomed:
            if budget is not None:
                budget.check()
            group = self._cell_group.pop(pos)
            group.members.remove(pos)
            if not group.members:
                del self._groups[group.r1c1]

    # -- storage statistics (the part Excel is good at) ---------------------------

    @property
    def stored_formula_count(self) -> int:
        """Formulae physically stored (one per shared group)."""
        return len(self._groups)

    @property
    def formula_cell_count(self) -> int:
        return len(self._cell_group)

    # -- queries -----------------------------------------------------------------

    def _decompress(self, budget: Budget | None) -> dict[tuple[int, int], list[tuple[int, int]]]:
        """Materialise the full cell-level adjacency (per query)."""
        adjacency: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for group in self._groups.values():
            for member in group.members:
                if budget is not None:
                    budget.check()
                for ref in group.member_references(*member):
                    for cell in ref.cells():
                        adjacency.setdefault(cell, []).append(member)
        return adjacency

    def find_dependents(self, rng: Range, budget: Budget | None = None) -> list[Range]:
        adjacency = self._decompress(budget)
        visited: set[tuple[int, int]] = set()
        frontier = [cell for cell in rng.cells() if cell in adjacency]
        while frontier:
            next_frontier: list[tuple[int, int]] = []
            for cell in frontier:
                for dependent in adjacency.get(cell, ()):  # noqa: B020
                    if budget is not None:
                        budget.check()
                    if dependent not in visited:
                        visited.add(dependent)
                        next_frontier.append(dependent)
            frontier = next_frontier
        return [Range.cell(*cell) for cell in visited]

    def find_precedents(self, rng: Range, budget: Budget | None = None) -> list[Range]:
        visited: set[tuple[int, int]] = set()
        frontier = {pos for pos in rng.cells()}
        result: list[Range] = []
        while frontier:
            next_frontier: set[tuple[int, int]] = set()
            for pos in frontier:
                group = self._cell_group.get(pos)
                if group is None:
                    continue
                for ref in group.member_references(*pos):
                    result.append(ref)
                    for cell in ref.cells():
                        if budget is not None:
                            budget.check()
                        if cell not in visited:
                            visited.add(cell)
                            next_frontier.add(cell)
            frontier = next_frontier
        return result

    def stats(self) -> GraphStats:
        edges = sum(
            len(group.member_references(*group.anchor_pos)) * len(group.members)
            for group in self._groups.values()
        )
        return GraphStats(vertices=len(self._cell_group), edges=edges)
