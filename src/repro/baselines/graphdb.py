"""An in-memory property-graph database, standing in for RedisGraph.

The paper stores formula graphs in RedisGraph (Sec. VI-D).  Graph
databases do not understand spreadsheet ranges, so each range edge is
decomposed into cell-to-cell edges (``A1:A2 -> B1`` becomes ``A1 -> B1``
and ``A2 -> B1``), loaded through a CSV bulk loader, and queried with
Cypher.  This module reproduces that pipeline: a small node/edge store
with label and property support, a CSV bulk loader, and the mini-Cypher
executor from :mod:`repro.baselines.cypher`.

Two RedisGraph behaviours the paper calls out are preserved:

* the cell-level decomposition blows the edge count up by the total area
  of the referenced ranges;
* variable-length traversals expand level by level without cross-level
  memoisation, so one edge is searched many times on deep graphs — the
  paper's stated reason for RedisGraph's DNFs.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable

from ..graphs.base import Budget, FormulaGraph, GraphStats
from ..grid.range import Range
from ..sheet.sheet import Dependency
from .cypher import CypherQuery, execute_query

__all__ = ["GraphDB", "RedisGraphLike"]


class GraphDB:
    """Directed property graph: labelled nodes, typed edges."""

    def __init__(self):
        self.nodes: dict[str, dict] = {}
        self.out_adj: dict[str, dict[str, list[str]]] = {}
        self.in_adj: dict[str, dict[str, list[str]]] = {}
        self.edge_count = 0
        # Instrumentation: how often edges are expanded during traversal.
        self.edge_visits = 0

    # -- mutation -----------------------------------------------------------

    def add_node(self, node_id: str, label: str = "Node", **props) -> None:
        self.nodes[node_id] = {"_label": label, **props}

    def add_edge(self, src: str, dst: str, rel_type: str = "DEP") -> None:
        if src not in self.nodes:
            self.add_node(src)
        if dst not in self.nodes:
            self.add_node(dst)
        self.out_adj.setdefault(src, {}).setdefault(rel_type, []).append(dst)
        self.in_adj.setdefault(dst, {}).setdefault(rel_type, []).append(src)
        self.edge_count += 1

    def remove_edge(self, src: str, dst: str, rel_type: str = "DEP") -> bool:
        targets = self.out_adj.get(src, {}).get(rel_type)
        if not targets or dst not in targets:
            return False
        targets.remove(dst)
        self.in_adj[dst][rel_type].remove(src)
        self.edge_count -= 1
        return True

    def remove_incoming_edges(self, dst: str, rel_type: str = "DEP") -> int:
        sources = self.in_adj.get(dst, {}).get(rel_type, [])
        removed = len(sources)
        for src in list(sources):
            self.out_adj[src][rel_type].remove(dst)
        if removed:
            self.in_adj[dst][rel_type] = []
            self.edge_count -= removed
        return removed

    # -- traversal primitives used by the Cypher executor ----------------------

    def successors(self, node_id: str, rel_type: str) -> list[str]:
        out = self.out_adj.get(node_id, {}).get(rel_type, [])
        self.edge_visits += len(out)
        return out

    def predecessors(self, node_id: str, rel_type: str) -> list[str]:
        out = self.in_adj.get(node_id, {}).get(rel_type, [])
        self.edge_visits += len(out)
        return out

    def nodes_with_label(self, label: str) -> Iterable[str]:
        for node_id, props in self.nodes.items():
            if props.get("_label") == label:
                yield node_id

    # -- bulk loading ------------------------------------------------------------

    def bulk_load_csv(self, nodes_csv: str, edges_csv: str, label: str = "Cell",
                      rel_type: str = "DEP") -> None:
        """Load from CSV text, mirroring redisgraph-bulk-loader's format.

        ``nodes_csv`` has a header whose first column is the node id;
        remaining columns become properties.  ``edges_csv`` has columns
        ``src,dst``.
        """
        node_reader = csv.reader(io.StringIO(nodes_csv))
        header = next(node_reader)
        for row in node_reader:
            if not row:
                continue
            props = dict(zip(header[1:], row[1:]))
            self.add_node(row[0], label=label, **props)
        edge_reader = csv.reader(io.StringIO(edges_csv))
        next(edge_reader)  # header
        for row in edge_reader:
            if not row:
                continue
            self.add_edge(row[0], row[1], rel_type)

    # -- query ---------------------------------------------------------------------

    def query(self, cypher_text: str, budget: Budget | None = None) -> list[tuple]:
        return execute_query(self, CypherQuery.parse(cypher_text), budget)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GraphDB(nodes={len(self.nodes)}, edges={self.edge_count})"


def _cell_id(col: int, row: int) -> str:
    return f"{col}_{row}"


class RedisGraphLike(FormulaGraph):
    """Formula graph stored cell-level in the graph database."""

    name = "RedisGraph"

    def __init__(self, decompose_limit: int = 2_000_000):
        self.db = GraphDB()
        self.decompose_limit = decompose_limit
        self._decomposed_edges = 0

    # -- construction -----------------------------------------------------------

    def build(self, deps: Iterable[Dependency], budget: Budget | None = None) -> None:
        """Decompose ranges to cell edges, then CSV-bulk-load (paper setup)."""
        nodes_buf = io.StringIO()
        edges_buf = io.StringIO()
        nodes_writer = csv.writer(nodes_buf)
        edges_writer = csv.writer(edges_buf)
        nodes_writer.writerow(["id", "addr"])
        edges_writer.writerow(["src", "dst"])
        seen_nodes: set[str] = set()

        def emit_node(col: int, row: int) -> str:
            node_id = _cell_id(col, row)
            if node_id not in seen_nodes:
                seen_nodes.add(node_id)
                nodes_writer.writerow([node_id, Range.cell(col, row).to_a1()])
            return node_id

        for dep in deps:
            if budget is not None:
                budget.check()
            dst = emit_node(*dep.dep.head)
            self._decomposed_edges += dep.prec.size
            if self._decomposed_edges > self.decompose_limit:
                raise MemoryError(
                    f"cell-level decomposition exceeded {self.decompose_limit} edges"
                )
            for col, row in dep.prec.cells():
                if budget is not None:
                    budget.check()
                edges_writer.writerow([emit_node(col, row), dst])
        self.db.bulk_load_csv(nodes_buf.getvalue(), edges_buf.getvalue())

    def add_dependency(self, dep: Dependency, budget: Budget | None = None) -> None:
        dst = _cell_id(*dep.dep.head)
        self.db.add_node(dst, label="Cell", addr=dep.dep.to_a1())
        for col, row in dep.prec.cells():
            if budget is not None:
                budget.check()
            src = _cell_id(col, row)
            if src not in self.db.nodes:
                self.db.add_node(src, label="Cell", addr=Range.cell(col, row).to_a1())
            self.db.add_edge(src, dst)

    def clear_cells(self, rng: Range, budget: Budget | None = None) -> None:
        for col, row in rng.cells():
            if budget is not None:
                budget.check()
            self.db.remove_incoming_edges(_cell_id(col, row))

    # -- queries -------------------------------------------------------------------

    def find_dependents(self, rng: Range, budget: Budget | None = None) -> list[Range]:
        out: set[str] = set()
        for col, row in rng.cells():
            node_id = _cell_id(col, row)
            if node_id not in self.db.nodes:
                continue
            rows = self.db.query(
                f"MATCH (a:Cell {{id: '{node_id}'}})-[:DEP*]->(b:Cell) "
                "RETURN DISTINCT b.addr",
                budget,
            )
            out.update(addr for (addr,) in rows)
        return [Range.from_a1(addr) for addr in out]

    def find_precedents(self, rng: Range, budget: Budget | None = None) -> list[Range]:
        out: set[str] = set()
        for col, row in rng.cells():
            node_id = _cell_id(col, row)
            if node_id not in self.db.nodes:
                continue
            rows = self.db.query(
                f"MATCH (a:Cell)-[:DEP*]->(b:Cell {{id: '{node_id}'}}) "
                "RETURN DISTINCT a.addr",
                budget,
            )
            out.update(addr for (addr,) in rows)
        return [Range.from_a1(addr) for addr in out]

    def stats(self) -> GraphStats:
        return GraphStats(
            vertices=len(self.db.nodes),
            edges=self.db.edge_count,
            edge_accesses=self.db.edge_visits,
        )
