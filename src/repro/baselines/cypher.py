"""A mini-Cypher subset for the graph-database baseline.

Supports the query shapes the paper's RedisGraph experiments need::

    MATCH (a:Cell {id: '3_2'})-[:DEP*]->(b:Cell) RETURN DISTINCT b.addr
    MATCH (a:Cell)-[:DEP]->(b:Cell) WHERE a.addr = 'B2' RETURN b.addr
    MATCH (a:Cell)-[:DEP*1..3]->(b) RETURN b.id

Grammar subset: a single MATCH with one relationship (optionally
variable-length with bounds), inline property maps on nodes, one optional
WHERE equality conjunction, and a RETURN list of property accesses with
optional DISTINCT.

The variable-length executor intentionally mirrors RedisGraph's
level-by-level expansion *without* cross-level memoisation: an edge is
re-expanded each time a path reaches its source on a new level.  On deep
dependency chains this makes query cost O(depth x edges) — the behaviour
behind the paper's RedisGraph DNFs.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, NamedTuple

from ..graphs.base import Budget

if TYPE_CHECKING:  # pragma: no cover
    from .graphdb import GraphDB

__all__ = ["CypherQuery", "CypherSyntaxError", "execute_query"]


class CypherSyntaxError(ValueError):
    pass


class NodePattern(NamedTuple):
    var: str
    label: str | None
    props: dict[str, str]


class RelPattern(NamedTuple):
    rel_type: str
    var_length: bool
    min_hops: int
    max_hops: int | None  # None = unbounded


class ReturnItem(NamedTuple):
    var: str
    prop: str | None


_NODE_RE = re.compile(
    r"\(\s*(?P<var>\w+)?\s*(?::\s*(?P<label>\w+))?\s*(?:\{(?P<props>[^}]*)\})?\s*\)"
)
_REL_RE = re.compile(
    r"-\[\s*:\s*(?P<type>\w+)\s*(?P<star>\*)?\s*(?:(?P<min>\d+)?\s*\.\.\s*(?P<max>\d+)?)?\s*\]->"
)
_WHERE_RE = re.compile(r"(?P<var>\w+)\.(?P<prop>\w+)\s*=\s*'(?P<value>[^']*)'")
_RETURN_ITEM_RE = re.compile(r"(?P<var>\w+)(?:\.(?P<prop>\w+))?")


def _parse_props(text: str | None) -> dict[str, str]:
    props: dict[str, str] = {}
    if not text:
        return props
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        match = re.match(r"(\w+)\s*:\s*'([^']*)'", part)
        if match is None:
            raise CypherSyntaxError(f"unsupported property map entry: {part!r}")
        props[match.group(1)] = match.group(2)
    return props


class CypherQuery:
    """A parsed mini-Cypher query."""

    def __init__(
        self,
        src: NodePattern,
        rel: RelPattern,
        dst: NodePattern,
        where: list[tuple[str, str, str]],
        returns: list[ReturnItem],
        distinct: bool,
    ):
        self.src = src
        self.rel = rel
        self.dst = dst
        self.where = where
        self.returns = returns
        self.distinct = distinct

    @classmethod
    def parse(cls, text: str) -> "CypherQuery":
        text = text.strip()
        upper = text.upper()
        if not upper.startswith("MATCH"):
            raise CypherSyntaxError("query must start with MATCH")
        return_index = upper.rfind("RETURN")
        if return_index < 0:
            raise CypherSyntaxError("query must contain RETURN")
        where_index = upper.find("WHERE")
        match_end = where_index if 0 <= where_index < return_index else return_index
        pattern_text = text[len("MATCH"):match_end].strip()
        where_text = (
            text[where_index + len("WHERE"):return_index].strip()
            if 0 <= where_index < return_index
            else ""
        )
        return_text = text[return_index + len("RETURN"):].strip()

        rel_match = _REL_RE.search(pattern_text)
        if rel_match is None:
            raise CypherSyntaxError("exactly one -[:TYPE]-> relationship is required")
        src_match = _NODE_RE.fullmatch(pattern_text[: rel_match.start()].strip())
        dst_match = _NODE_RE.fullmatch(pattern_text[rel_match.end():].strip())
        if src_match is None or dst_match is None:
            raise CypherSyntaxError("could not parse node patterns")

        def node_from(match: re.Match) -> NodePattern:
            return NodePattern(
                match.group("var") or "_",
                match.group("label"),
                _parse_props(match.group("props")),
            )

        var_length = rel_match.group("star") is not None
        min_hops = int(rel_match.group("min")) if rel_match.group("min") else 1
        max_hops = int(rel_match.group("max")) if rel_match.group("max") else None
        rel = RelPattern(rel_match.group("type"), var_length, min_hops, max_hops)

        where: list[tuple[str, str, str]] = []
        if where_text:
            for clause in re.split(r"\bAND\b", where_text, flags=re.IGNORECASE):
                clause = clause.strip()
                if not clause:
                    continue
                cond = _WHERE_RE.fullmatch(clause)
                if cond is None:
                    raise CypherSyntaxError(f"unsupported WHERE clause: {clause!r}")
                where.append((cond.group("var"), cond.group("prop"), cond.group("value")))

        distinct = False
        if return_text.upper().startswith("DISTINCT"):
            distinct = True
            return_text = return_text[len("DISTINCT"):].strip()
        returns: list[ReturnItem] = []
        for item in return_text.split(","):
            item = item.strip()
            item_match = _RETURN_ITEM_RE.fullmatch(item)
            if item_match is None:
                raise CypherSyntaxError(f"unsupported RETURN item: {item!r}")
            returns.append(ReturnItem(item_match.group("var"), item_match.group("prop")))
        if not returns:
            raise CypherSyntaxError("empty RETURN list")
        return cls(node_from(src_match), rel, node_from(dst_match), where, returns, distinct)


def _node_matches(db: "GraphDB", node_id: str, pattern: NodePattern,
                  where: list[tuple[str, str, str]]) -> bool:
    props = db.nodes.get(node_id)
    if props is None:
        return False
    if pattern.label is not None and props.get("_label") != pattern.label:
        return False
    for key, expected in pattern.props.items():
        actual = node_id if key == "id" else props.get(key)
        if actual != expected:
            return False
    for var, prop, expected in where:
        if var != pattern.var:
            continue
        actual = node_id if prop == "id" else props.get(prop)
        if actual != expected:
            return False
    return True


def _seed_nodes(db: "GraphDB", pattern: NodePattern,
                where: list[tuple[str, str, str]]) -> list[str]:
    if "id" in pattern.props:
        node_id = pattern.props["id"]
        return [node_id] if _node_matches(db, node_id, pattern, where) else []
    for var, prop, value in where:
        if var == pattern.var and prop == "id":
            return [value] if _node_matches(db, value, pattern, where) else []
    # Full label scan, as a graph database without a property index would.
    return [n for n in db.nodes if _node_matches(db, n, pattern, where)]


def execute_query(db: "GraphDB", query: CypherQuery,
                  budget: Budget | None = None) -> list[tuple]:
    """Execute a parsed query, returning result tuples."""
    sources = _seed_nodes(db, query.src, query.where)
    pairs: list[tuple[str, str]] = []
    rel = query.rel
    for source in sources:
        if not rel.var_length:
            for target in db.successors(source, rel.rel_type):
                if budget is not None:
                    budget.check()
                if _node_matches(db, target, query.dst, query.where):
                    pairs.append((source, target))
            continue
        # Variable length: level-by-level expansion. Nodes reached at a
        # level are deduplicated within that level only; an edge is
        # re-expanded whenever its source re-enters the frontier, like an
        # unoptimised graph-database traversal.
        reached: set[str] = set()
        frontier = {source}
        hops = 0
        # On a DAG the frontier empties once the longest path is exhausted;
        # the hop cap guards against cyclic (malformed) input.
        max_level = len(db.nodes) if rel.max_hops is None else rel.max_hops
        while frontier and hops < max_level:
            hops += 1
            next_frontier: set[str] = set()
            for node in frontier:
                for target in db.successors(node, rel.rel_type):
                    if budget is not None:
                        budget.check()
                    next_frontier.add(target)
            if hops >= rel.min_hops:
                fresh = next_frontier - reached
                reached |= fresh
                for target in fresh:
                    if _node_matches(db, target, query.dst, query.where):
                        pairs.append((source, target))
            frontier = next_frontier

    rows: list[tuple] = []
    for source, target in pairs:
        row = []
        for item in query.returns:
            node_id = source if item.var == query.src.var else target
            if item.prop is None or item.prop == "id":
                row.append(node_id)
            else:
                row.append(db.nodes[node_id].get(item.prop))
        rows.append(tuple(row))
    if query.distinct:
        rows = list(dict.fromkeys(rows))
    return rows
