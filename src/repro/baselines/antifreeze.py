"""Antifreeze-style precomputed dependents tables (paper Sec. VI-D).

Antifreeze (Bendre et al., SIGMOD 2019) supports asynchronous formula
computation by *precomputing*, for every cell, its full transitive
dependent set, compressed into at most ``max_ranges`` bounding ranges
(20 in the paper).  Lookup is then O(1), but:

* building the table requires a transitive-closure pass over the
  uncompressed graph and is extremely expensive on large sheets — in the
  paper it DNFs on 16 of the 20 hardest spreadsheets;
* the bounding-range compression admits **false positives** (cells
  reported as dependents that are not);
* any formula change rebuilds the lookup table from scratch.

All three behaviours are reproduced here.
"""

from __future__ import annotations

from typing import Iterable

from ..graphs.base import Budget, FormulaGraph, GraphStats
from ..graphs.nocomp import NoCompGraph
from ..grid.range import Range
from ..sheet.sheet import Dependency

__all__ = ["AntifreezeIndex", "compress_ranges"]

DEFAULT_MAX_RANGES = 20


def _bounding_area_increase(a: Range, b: Range) -> int:
    merged_w = max(a.c2, b.c2) - min(a.c1, b.c1) + 1
    merged_h = max(a.r2, b.r2) - min(a.r1, b.r1) + 1
    return merged_w * merged_h - a.size - b.size


def compress_ranges(
    ranges: list[Range], max_ranges: int, budget: Budget | None = None
) -> list[Range]:
    """Greedily merge ranges into at most ``max_ranges`` bounding ranges.

    Repeatedly merges the pair whose bounding box wastes the least area —
    the smallest-false-positive greedy choice.  Quadratic per merge, which
    is part of Antifreeze's honest build cost.
    """
    out = list(dict.fromkeys(ranges))
    # A cheap linear pre-pass keeps the quadratic stage tractable when a
    # cell has thousands of direct contributions: merge sorted neighbours.
    prepass_limit = max(4 * max_ranges, 64)
    if len(out) > prepass_limit:
        out.sort(key=Range.as_tuple)
        merged: list[Range] = [out[0]]
        stride = (len(out) + prepass_limit - 1) // prepass_limit
        count = 1
        for rng in out[1:]:
            if budget is not None:
                budget.check()
            if count % stride:
                merged[-1] = merged[-1].bounding(rng)
            else:
                merged.append(rng)
            count += 1
        out = merged
    while len(out) > max_ranges:
        best = None
        best_cost = None
        for i in range(len(out)):
            if budget is not None:
                budget.check()
            for j in range(i + 1, len(out)):
                cost = _bounding_area_increase(out[i], out[j])
                if best_cost is None or cost < best_cost:
                    best, best_cost = (i, j), cost
        i, j = best
        merged_range = out[i].bounding(out[j])
        out.pop(j)
        out[i] = merged_range
    return out


class AntifreezeIndex(FormulaGraph):
    """Per-cell precomputed dependents with bounding-range compression."""

    name = "Antifreeze"

    def __init__(self, max_ranges: int = DEFAULT_MAX_RANGES):
        self.max_ranges = max_ranges
        self._graph = NoCompGraph()
        self._table: dict[tuple[int, int], list[Range]] = {}
        self._built = False

    # -- construction ------------------------------------------------------------

    def build(self, deps: Iterable[Dependency], budget: Budget | None = None) -> None:
        for dep in deps:
            if budget is not None:
                budget.check()
            self._graph.add_dependency(dep)
        self._precompute(budget)

    def add_dependency(self, dep: Dependency, budget: Budget | None = None) -> None:
        # Any formula change rebuilds the table from scratch (paper).
        self._graph.add_dependency(dep)
        self._precompute(budget)

    def clear_cells(self, rng: Range, budget: Budget | None = None) -> None:
        self._graph.clear_cells(rng, budget)
        self._precompute(budget)

    def _precompute(self, budget: Budget | None = None) -> None:
        """Compute the per-cell dependents table.

        Formula-cell dependent sets are memoised in reverse-topological
        (iterative post-order) order; then every cell of every referenced
        range receives an entry.
        """
        self._table = {}
        memo: dict[tuple[int, int], list[Range]] = {}
        formula_cells = set(self._graph.formula_cells())

        def direct_dependents(cell: tuple[int, int]) -> list[tuple[int, int]]:
            out = []
            for dep_range in self._graph.direct_dependents(Range.cell(*cell)):
                out.append(dep_range.head)
            return out

        for root in formula_cells:
            if root in memo:
                continue
            stack: list[tuple[tuple[int, int], list[tuple[int, int]], int]] = [
                (root, direct_dependents(root), 0)
            ]
            on_stack = {root}
            while stack:
                if budget is not None:
                    budget.check()
                cell, children, child_index = stack.pop()
                advanced = False
                while child_index < len(children):
                    child = children[child_index]
                    child_index += 1
                    if child in memo or child not in formula_cells:
                        continue
                    if child in on_stack:
                        raise ValueError("cycle detected in formula graph")
                    stack.append((cell, children, child_index))
                    stack.append((child, direct_dependents(child), 0))
                    on_stack.add(child)
                    advanced = True
                    break
                if advanced:
                    continue
                # Post-order: all children memoised.
                contributions: list[Range] = []
                for child in children:
                    contributions.append(Range.cell(*child))
                    contributions.extend(memo.get(child, ()))
                memo[cell] = compress_ranges(contributions, self.max_ranges, budget)
                on_stack.discard(cell)

        # Table entries for every cell of every referenced range.
        for prec in self._graph.precedent_ranges():
            direct = self._graph._adjacency[prec]
            for cell in prec.cells():
                if budget is not None:
                    budget.check()
                contributions = list(self._table.get(cell, ()))
                for dep_cell in direct:
                    contributions.append(Range.cell(*dep_cell))
                    contributions.extend(memo.get(dep_cell, ()))
                self._table[cell] = compress_ranges(
                    contributions, self.max_ranges, budget
                )
        self._built = True

    # -- queries --------------------------------------------------------------

    def find_dependents(self, rng: Range, budget: Budget | None = None) -> list[Range]:
        """O(1) per cell: union the precomputed entries (may overcount)."""
        if rng.is_cell:
            return list(self._table.get(rng.head, ()))
        out: list[Range] = []
        for cell in rng.cells():
            if budget is not None:
                budget.check()
            out.extend(self._table.get(cell, ()))
        return compress_ranges(out, self.max_ranges, budget) if out else []

    def find_precedents(self, rng: Range, budget: Budget | None = None) -> list[Range]:
        # Antifreeze only precomputes the dependents direction; fall back
        # to the underlying uncompressed graph for precedents.
        return self._graph.find_precedents(rng, budget)

    def stats(self) -> GraphStats:
        base = self._graph.stats()
        return GraphStats(
            vertices=base.vertices,
            edges=base.edges,
            edge_accesses=base.edge_accesses,
            index_searches=base.index_searches,
        )

    @property
    def table_size(self) -> int:
        return len(self._table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AntifreezeIndex(cells={len(self._table)}, max_ranges={self.max_ranges})"
