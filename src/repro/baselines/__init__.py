"""External-system baselines: Antifreeze, RedisGraph-like, Excel-like."""

from .antifreeze import AntifreezeIndex, compress_ranges
from .cypher import CypherQuery, CypherSyntaxError, execute_query
from .excel_like import ExcelLikeEngine, to_r1c1
from .graphdb import GraphDB, RedisGraphLike

__all__ = [
    "AntifreezeIndex",
    "CypherQuery",
    "CypherSyntaxError",
    "ExcelLikeEngine",
    "GraphDB",
    "RedisGraphLike",
    "compress_ranges",
    "execute_query",
    "to_r1c1",
]
