"""Multi-tenant asyncio workbook service (ROADMAP item 1).

The paper's host model (Sec. I, VI-A) returns control to the user as
soon as an update's dependents are identified; recomputation happens
asynchronously.  :class:`WorkbookService` scales that shape out to many
workbooks under one event loop, with the compressed formula graph on
every op's critical path.

Concurrency model
-----------------
* **Per-workbook write serialization.**  Every mutating operation is
  enqueued on its workbook's op queue and applied by that workbook's
  single writer task, in submission order.  Two writes to one workbook
  never interleave; writes to different workbooks proceed
  independently.
* **Snapshot-consistent reads.**  Read operations run directly on the
  event loop with no await points between resolving the workbook and
  returning — the single-threaded loop guarantees no writer can run
  underneath them, so a read observes exactly the state at some op
  boundary.  Reads never enter a queue and never wait on another
  workbook's writes.
* **Deferred recomputation.**  Writes ride
  :class:`~repro.engine.async_engine.AsyncRecalcEngine`: an op returns
  at the control-return point with its dependents marked stale, and the
  writer task pumps bounded ``step()`` slices whenever its queue is
  empty, yielding to the loop between slices.
* **LRU residency.**  At most ``max_resident`` workbooks stay in
  memory.  Admitting one more evicts the least recently used: its
  pending recomputation drains, the workbook snapshots, and its journal
  rotates to a fresh one paired with the new snapshot.  A later op
  re-admits it via the snapshot + journal-replay fast path
  (``Workbook.restore``).

Durability
----------
Every committed write appends one journal record *at commit time*,
before recomputation: point edits through :meth:`Journal.record_cell`,
batches and structural ops through the engine hooks they already carry.
At any instant, snapshot + journal prefix reproduces every acknowledged
write.  Eviction snapshots first and rotates the journal second; a
crash between the two leaves a journal superseded by the newer snapshot,
which admission detects by the pairing stamp and repairs by replaying
nothing and rotating the journal forward.
"""

from __future__ import annotations

import asyncio
import os
import re
import time
from collections import OrderedDict

from ..core.query import dependents_of_seeds
from ..engine.async_engine import AsyncRecalcEngine, UpdateTicket
from ..engine.journal import Journal, JournalFormatError, read_journal, recover
from ..engine.recalc import CircularReferenceError, RecalcEngine
from ..engine.structural import apply_structural_edit
from ..formula.parser import parse_formula
from ..grid.range import Range
from ..io.snapshot import encode_value, load_snapshot
from ..sheet.workbook import Workbook
from .catalog import CATALOG, TOOL_CATALOG, OpValidationError, validate_op
from .metrics import ServiceMetrics

__all__ = ["WorkbookService"]

_EVICT = "__evict__"
_MAX_RANGE_CELLS = 65536
_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_ROW_OPS = {"insert_rows", "delete_rows"}
_COL_OPS = {"insert_columns", "delete_columns"}
_STRUCTURAL = _ROW_OPS | _COL_OPS


class _SheetRuntime:
    """One sheet's engines: the deferred engine owns the dirty set, the
    synchronous engine (sharing sheet + graph + journal) drives batch
    commits and structural edits."""

    __slots__ = ("sheet", "async_engine", "sync_engine")

    def __init__(self, sheet, graph, journal, evaluation):
        self.sheet = sheet
        self.async_engine = AsyncRecalcEngine(sheet, graph, evaluation=evaluation)
        self.sync_engine = RecalcEngine(
            sheet, self.async_engine.graph, evaluation=evaluation, journal=journal
        )


class _Resident:
    """A workbook held in memory: its runtimes, journal, op queue, and
    the single writer task draining that queue."""

    __slots__ = ("wb_id", "workbook", "journal", "runtimes", "queue", "writer")

    def __init__(self, wb_id, workbook, journal):
        self.wb_id = wb_id
        self.workbook = workbook
        self.journal = journal
        self.runtimes: dict[str, _SheetRuntime] = {}
        self.queue: asyncio.Queue | None = None
        self.writer: asyncio.Task | None = None

    def pending(self) -> int:
        return sum(rt.async_engine.pending for rt in self.runtimes.values())


class WorkbookService:
    """An asyncio service hosting many workbooks concurrently.

    ``data_dir`` holds one snapshot (``<id>.snap``) and one journal
    (``<id>.wal``) per workbook; a service restarted over the same
    directory re-admits every workbook on first touch.  ``fsync=False``
    relaxes journal durability for tests and bulk imports.
    """

    def __init__(
        self,
        data_dir: str,
        *,
        max_resident: int = 8,
        fsync: bool = True,
        step_cells: int = 256,
        evaluation: str = "auto",
    ):
        if max_resident < 1:
            raise ValueError("max_resident must be >= 1")
        self.data_dir = data_dir
        os.makedirs(data_dir, exist_ok=True)
        self.max_resident = max_resident
        self.fsync = fsync
        self.step_cells = step_cells
        self.evaluation = evaluation
        self.metrics = ServiceMetrics()
        self._residents: "OrderedDict[str, _Resident]" = OrderedDict()
        self._admission: dict[str, asyncio.Lock] = {}
        self._known_evicted: set[str] = set()
        self._closed = False

    # -- introspection ---------------------------------------------------------

    @staticmethod
    def catalog() -> list[dict]:
        """The typed operation catalog (see :mod:`repro.server.catalog`)."""
        return TOOL_CATALOG

    @property
    def resident_ids(self) -> list[str]:
        """Resident workbook ids, least recently used first."""
        return list(self._residents)

    def stats(self) -> dict:
        out = self.metrics.snapshot()
        out["resident"] = list(self._residents)
        out["max_resident"] = self.max_resident
        return out

    # -- lifecycle -------------------------------------------------------------

    async def create_workbook(
        self, wb_id: str, sheets=("Sheet1",), *, workbook: Workbook | None = None
    ) -> dict:
        """Create a workbook (or attach a pre-built one) and make it
        resident.  It is snapshotted and paired with a fresh journal
        immediately, so a crash at any later instant restores it."""
        self._check_open()
        if not _ID_RE.match(wb_id):
            raise OpValidationError(
                f"invalid workbook id {wb_id!r} (letters, digits, '.', '_', '-')"
            )
        async with self._lock_for(wb_id):
            if wb_id in self._residents or os.path.exists(self._snapshot_path(wb_id)):
                raise OpValidationError(f"workbook {wb_id!r} already exists")
            await self._make_room()
            if workbook is None:
                workbook = Workbook(wb_id)
                for name in sheets:
                    workbook.add_sheet(name)
            res = self._admit_fresh(wb_id, workbook)
            self._install(res)
            self.metrics.cold_admissions += 1
        return {"workbook": wb_id, "sheets": workbook.sheet_names}

    async def close(self) -> None:
        """Evict every resident workbook to disk and stop the service."""
        if self._closed:
            return
        self._closed = True
        for wb_id in list(self._residents):
            await self._evict(wb_id)

    async def __aenter__(self) -> "WorkbookService":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # -- the op dispatch -------------------------------------------------------

    async def execute(self, wb_id: str, op: str, params: dict | None = None) -> dict:
        """Run one catalog operation against ``wb_id``.

        Reads return immediately with snapshot-consistent state; writes
        are serialized through the workbook's writer task and return at
        the control-return point (dependents marked, not recomputed).
        """
        self._check_open()
        params = validate_op(op, params)
        stats = self.metrics.op(op)
        start = time.perf_counter()
        try:
            res = await self._ensure_resident(wb_id)
            if CATALOG[op]["read_only"]:
                result = self._apply_read(res, op, params)
            else:
                future = asyncio.get_running_loop().create_future()
                res.queue.put_nowait((op, params, future))
                self.metrics.sample_queue_depth(res.queue.qsize())
                result = await future
        except Exception:
            stats.record(time.perf_counter() - start, error=True)
            raise
        stats.record(
            time.perf_counter() - start,
            control_return=result.get("control_return_seconds"),
        )
        return result

    # -- residency -------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("service is closed")

    def _lock_for(self, wb_id: str) -> asyncio.Lock:
        lock = self._admission.get(wb_id)
        if lock is None:
            lock = self._admission[wb_id] = asyncio.Lock()
        return lock

    def _snapshot_path(self, wb_id: str) -> str:
        return os.path.join(self.data_dir, f"{wb_id}.snap")

    def _journal_path(self, wb_id: str) -> str:
        return os.path.join(self.data_dir, f"{wb_id}.wal")

    async def _ensure_resident(self, wb_id: str) -> _Resident:
        res = self._residents.get(wb_id)
        if res is not None:
            # Fast path: no await point between here and the caller's
            # enqueue/read — resident reads stay queue-free.
            self._residents.move_to_end(wb_id)
            return res
        async with self._lock_for(wb_id):
            res = self._residents.get(wb_id)
            if res is not None:
                self._residents.move_to_end(wb_id)
                return res
            if not os.path.exists(self._snapshot_path(wb_id)):
                raise OpValidationError(
                    f"unknown workbook {wb_id!r}; create_workbook first"
                )
            # Make room *before* installing, while still holding the
            # admission lock: once installed, the caller reaches its
            # enqueue/read with no further await point, so a concurrent
            # capacity pass can never evict the workbook out from under
            # it (a stale queue would strand the writer future forever).
            await self._make_room()
            res = self._admit_from_disk(wb_id)
            self._install(res)
            if wb_id in self._known_evicted:
                self.metrics.readmissions += 1
            else:
                self.metrics.cold_admissions += 1
            return res

    def _install(self, res: _Resident) -> None:
        res.queue = asyncio.Queue()
        res.writer = asyncio.get_running_loop().create_task(self._writer_loop(res))
        self._residents[res.wb_id] = res

    def _admit_fresh(self, wb_id: str, workbook: Workbook) -> _Resident:
        # Recalculate once so the snapshot carries clean cached values;
        # cycles surface as #CYCLE! cells rather than aborting admission.
        engines: dict[str, RecalcEngine] = {}
        for sheet in workbook.sheets():
            engine = RecalcEngine(sheet, evaluation=self.evaluation)
            try:
                engine.recalculate_all()
            except CircularReferenceError:
                pass
            engines[sheet.name] = engine
        stats = workbook.snapshot(
            self._snapshot_path(wb_id),
            graphs={name: engine.graph for name, engine in engines.items()},
        )
        journal = Journal(
            self._journal_path(wb_id), fsync=self.fsync,
            truncate=True, snapshot_id=stats.snapshot_id,
        )
        res = _Resident(wb_id, workbook, journal)
        for sheet in workbook.sheets():
            res.runtimes[sheet.name] = _SheetRuntime(
                sheet, engines[sheet.name].graph, journal, self.evaluation
            )
        return res

    def _admit_from_disk(self, wb_id: str) -> _Resident:
        snap = load_snapshot(self._snapshot_path(wb_id))
        snapshot_id = snap.meta.get("snapshot_id") or None
        journal_path = self._journal_path(wb_id)
        try:
            recovery = recover(snap, journal_path, evaluation=self.evaluation)
        except JournalFormatError:
            if not self._journal_superseded(journal_path, snapshot_id):
                raise
            # An eviction crashed between its snapshot write and its
            # journal rotation: the snapshot already embodies every
            # journaled edit, so replay nothing and rotate now.
            recovery = recover(snap, None, evaluation=self.evaluation)
            Journal(
                journal_path, fsync=self.fsync,
                truncate=True, snapshot_id=snapshot_id,
            ).close()
            self.metrics.rotation_repairs += 1
        journal = Journal(journal_path, fsync=self.fsync, snapshot_id=snapshot_id)
        res = _Resident(wb_id, recovery.workbook, journal)
        for sheet in recovery.workbook.sheets():
            res.runtimes[sheet.name] = _SheetRuntime(
                sheet, recovery.graphs.get(sheet.name), journal, self.evaluation
            )
        return res

    @staticmethod
    def _journal_superseded(journal_path: str, snapshot_id: str | None) -> bool:
        """True when the journal's pairing stamp names an *older*
        snapshot than the one on disk — only the service's own crashed
        eviction produces that state (this directory has no other
        writers), so the journal's content is already in the snapshot."""
        if snapshot_id is None or not os.path.exists(journal_path):
            return False
        try:
            records = read_journal(journal_path).records
        except JournalFormatError:
            return False
        stamps = [r.get("snapshot") for r in records if r.get("kind") == "open"]
        return bool(stamps) and snapshot_id not in stamps

    async def _make_room(self) -> None:
        # Called with the incoming workbook's admission lock held; the
        # incoming id is not yet resident, so it cannot be picked as a
        # victim here.  Victim admission locks are only ever held by
        # _evict itself (which awaits nothing but the victim's writer),
        # so holding our lock across these awaits cannot form a cycle.
        while len(self._residents) >= self.max_resident:
            victim = next(iter(self._residents), None)
            if victim is None:
                return
            await self._evict(victim)

    async def _evict(self, wb_id: str) -> None:
        async with self._lock_for(wb_id):
            res = self._residents.pop(wb_id, None)
            if res is None:
                return
            future = asyncio.get_running_loop().create_future()
            res.queue.put_nowait((_EVICT, None, future))
            try:
                await future
            finally:
                res.journal.close()
            self._known_evicted.add(wb_id)
            self.metrics.evictions += 1

    def _evict_to_disk(self, res: _Resident) -> None:
        # Quiesce first: bake every pending recomputation into cached
        # values so the snapshot is clean and the fresh journal starts
        # empty.  Snapshot before rotating — at every instant the disk
        # pair reproduces all acknowledged writes (see module docs).
        self._drain(res)
        stats = res.workbook.snapshot(
            self._snapshot_path(res.wb_id),
            graphs={name: rt.async_engine.graph for name, rt in res.runtimes.items()},
        )
        res.journal.close()
        Journal(
            self._journal_path(res.wb_id), fsync=self.fsync,
            truncate=True, snapshot_id=stats.snapshot_id,
        ).close()

    # -- the writer task -------------------------------------------------------

    async def _writer_loop(self, res: _Resident) -> None:
        queue = res.queue
        while True:
            if queue.empty() and res.pending():
                self.metrics.background_cells += self._pump(res)
                await asyncio.sleep(0)
                continue
            op, params, future = await queue.get()
            if op is _EVICT:
                try:
                    self._evict_to_disk(res)
                except Exception as exc:
                    if not future.done():
                        future.set_exception(exc)
                else:
                    if not future.done():
                        future.set_result(None)
                return
            try:
                result = self._apply_write(res, op, params)
            except Exception as exc:
                if not future.done():
                    future.set_exception(exc)
            else:
                if not future.done():
                    future.set_result(result)
            # Queue.get returns without suspending while ops are ready;
            # yield so readers interleave instead of waiting out a burst.
            await asyncio.sleep(0)

    def _pump(self, res: _Resident) -> int:
        budget = self.step_cells
        total = 0
        for rt in res.runtimes.values():
            if budget <= 0:
                break
            if rt.async_engine.pending:
                done = rt.async_engine.step(budget)
                total += done
                budget -= done
        return total

    def _drain(self, res: _Resident) -> int:
        total = 0
        for rt in res.runtimes.values():
            total += rt.async_engine.drain()
        self.metrics.background_cells += total
        return total

    # -- op handlers -----------------------------------------------------------

    def _runtime(self, res: _Resident, sheet_name: str | None) -> _SheetRuntime:
        workbook = res.workbook
        if sheet_name is None:
            sheet = workbook.active_sheet
        elif sheet_name in workbook:
            sheet = workbook[sheet_name]
        else:
            raise OpValidationError(
                f"unknown sheet {sheet_name!r} in workbook {res.wb_id!r}"
            )
        rt = res.runtimes.get(sheet.name)
        if rt is None:
            rt = res.runtimes[sheet.name] = _SheetRuntime(
                sheet, None, res.journal, self.evaluation
            )
        return rt

    @staticmethod
    def _cell_pos(text: str) -> tuple[int, int]:
        try:
            rng = Range.from_a1(text)
        except ValueError as exc:
            raise OpValidationError(str(exc)) from exc
        if not rng.is_cell:
            raise OpValidationError(f"expected a single cell, got range {text!r}")
        return rng.head

    def _apply_read(self, res: _Resident, op: str, params: dict) -> dict:
        rt = self._runtime(res, params.get("sheet"))
        base = {"workbook": res.wb_id, "sheet": rt.sheet.name}
        if op == "get_cell":
            pos = self._cell_pos(params["cell"])
            view = rt.async_engine.read(pos)
            base.update(
                cell=Range.cell(*pos).to_a1(),
                value=encode_value(view.value),
                dirty=view.is_dirty,
            )
            return base
        if op == "get_range":
            try:
                rng = Range.from_a1(params["range_ref"])
            except ValueError as exc:
                raise OpValidationError(str(exc)) from exc
            if rng.size > _MAX_RANGE_CELLS:
                raise OpValidationError(
                    f"range {rng.to_a1()} spans {rng.size} cells "
                    f"(limit {_MAX_RANGE_CELLS})"
                )
            engine = rt.async_engine
            sheet = rt.sheet
            dirty_cells = 0
            values = []
            for row in range(rng.r1, rng.r2 + 1):
                row_values = []
                for col in range(rng.c1, rng.c2 + 1):
                    row_values.append(encode_value(sheet.get_value((col, row))))
                    if engine.is_dirty((col, row)):
                        dirty_cells += 1
                values.append(row_values)
            base.update(range=rng.to_a1(), values=values, dirty_cells=dirty_cells)
            return base
        # summarize_sheet
        sheet = rt.sheet
        cells = 0
        max_col = 0
        max_row = 0
        for col, row in sheet.positions():
            cells += 1
            if col > max_col:
                max_col = col
            if row > max_row:
                max_row = row
        formulas = sum(1 for _ in sheet.formula_cells())
        base.update(
            cells=cells,
            formulas=formulas,
            extent=Range(1, 1, max_col, max_row).to_a1() if cells else None,
            pending=rt.async_engine.pending,
            sheets=res.workbook.sheet_names,
        )
        return base

    def _apply_write(self, res: _Resident, op: str, params: dict) -> dict:
        if op in _STRUCTURAL:
            return self._apply_structural(res, op, params)
        rt = self._runtime(res, params.get("sheet"))
        if op == "recalculate":
            recomputed = self._drain(res)
            return {
                "workbook": res.wb_id,
                "recomputed": recomputed,
                "pending": res.pending(),
            }
        if op == "batch_edit":
            return self._apply_batch(res, rt, params["edits"])
        engine = rt.async_engine
        pos = self._cell_pos(params["cell"])
        if op == "set_cell":
            value = params["value"]
            encode_value(value)  # journalable, before anything mutates
            ticket = engine.set_value(pos, value)
            res.journal.record_cell(rt.sheet.name, "value", pos, value)
        elif op == "set_formula":
            text = params["formula"]
            try:
                parse_formula(text)  # parse errors before anything mutates
            except ValueError as exc:
                raise OpValidationError(str(exc)) from exc
            ticket = engine.set_formula(pos, text)
            res.journal.record_cell(rt.sheet.name, "formula", pos, text)
        else:  # clear_cell
            ticket = engine.clear_cell(pos)
            res.journal.record_cell(rt.sheet.name, "clear", pos)
        self.metrics.journal_records += 1
        return self._ticket_result(res, rt, pos, ticket)

    def _ticket_result(
        self, res: _Resident, rt: _SheetRuntime, pos, ticket: UpdateTicket
    ) -> dict:
        return {
            "workbook": res.wb_id,
            "sheet": rt.sheet.name,
            "cell": Range.cell(*pos).to_a1(),
            "dirty_count": ticket.dirty_count,
            "pending": ticket.pending,
            "control_return_seconds": ticket.control_return_seconds,
        }

    def _apply_batch(self, res: _Resident, rt: _SheetRuntime, edits: list) -> dict:
        staged = [self._parse_batch_edit(i, edit) for i, edit in enumerate(edits)]
        start = time.perf_counter()
        with rt.sync_engine.begin_batch(recalc=False, workbook=res.workbook) as batch:
            for kind, target, payload in staged:
                getattr(batch, kind)(target, *payload)
        result = batch.result
        # recalc=False committed maintenance only: hand the batch's
        # dirty cover (edited cells + their transitive dependents) to
        # the deferred engine so the background pump picks it up.
        marked = rt.async_engine.note_external_dirty(
            list(result.cleared_ranges) + list(result.dirty_ranges)
        )
        self.metrics.journal_records += 1
        return {
            "workbook": res.wb_id,
            "sheet": rt.sheet.name,
            "edits": len(edits),
            "dirty_count": marked,
            "pending": res.pending(),
            "control_return_seconds": time.perf_counter() - start,
        }

    @staticmethod
    def _parse_batch_edit(index: int, edit) -> tuple[str, object, tuple]:
        if not isinstance(edit, dict):
            raise OpValidationError(f"batch_edit: edit {index} is not an object")
        kind = edit.get("op")
        if kind == "set_value":
            value = edit.get("value")
            encode_value(value)
            return "set_value", WorkbookService._cell_pos(edit.get("cell", "")), (value,)
        if kind == "set_formula":
            text = edit.get("formula")
            if not isinstance(text, str):
                raise OpValidationError(f"batch_edit: edit {index} needs a 'formula' string")
            try:
                parse_formula(text)
            except ValueError as exc:
                raise OpValidationError(f"batch_edit: edit {index}: {exc}") from exc
            return "set_formula", WorkbookService._cell_pos(edit.get("cell", "")), (text,)
        if kind == "clear_cell":
            return "clear_cell", WorkbookService._cell_pos(edit.get("cell", "")), ()
        if kind == "clear_range":
            try:
                rng = Range.from_a1(edit.get("range_ref", ""))
            except ValueError as exc:
                raise OpValidationError(f"batch_edit: edit {index}: {exc}") from exc
            return "clear_range", rng, ()
        raise OpValidationError(
            f"batch_edit: edit {index} has unknown op {kind!r} "
            "(set_value/set_formula/clear_cell/clear_range)"
        )

    def _apply_structural(self, res: _Resident, op: str, params: dict) -> dict:
        rt = self._runtime(res, params.get("sheet"))
        index = params["row"] if op in _ROW_OPS else params["col"]
        count = params["count"]
        start = time.perf_counter()
        # Pending deferred positions are (col, row) tuples the shift
        # would silently re-address: quiesce this workbook first.
        self._drain(res)
        result = apply_structural_edit(
            rt.sync_engine, op, index, count, recalc=False, workbook=res.workbook
        )
        marked = rt.async_engine.note_external_dirty(result.dirty_ranges)
        # Sibling sheets whose cross-sheet references were rewritten
        # re-evaluate through their own engines.
        for name, report in (result.sibling_reports or {}).items():
            seeds = [Range.cell(*pos) for pos in report.dirty_seeds]
            if not seeds:
                continue
            sibling = self._runtime(res, name)
            marked += sibling.async_engine.note_external_dirty(
                seeds + dependents_of_seeds(sibling.async_engine.graph, seeds)
            )
        self.metrics.journal_records += 1
        return {
            "workbook": res.wb_id,
            "sheet": rt.sheet.name,
            "op": op,
            "index": index,
            "count": count,
            "moved_cells": result.moved_cells,
            "rewritten_formulas": result.rewritten_formulas,
            "ref_errors": result.ref_errors,
            "dirty_count": marked,
            "pending": res.pending(),
            "control_return_seconds": time.perf_counter() - start,
        }
