"""Typed operation catalog for the workbook service.

Every operation :class:`~repro.server.service.WorkbookService` accepts
is declared here as plain data — name, description, JSON-schema-style
parameters, and whether it reads or writes — so hosts can introspect
the surface (hand it to an agent runtime, generate client bindings,
render an admin UI) without importing the engine stack.

:func:`validate_op` is the single choke point every request passes
through before it touches a workbook: unknown operations, unknown or
missing parameters, and type mismatches all fail here with
:class:`OpValidationError`, which the service treats as a client error
rather than a crash.
"""

from __future__ import annotations

__all__ = ["TOOL_CATALOG", "CATALOG", "OpValidationError", "validate_op"]


class OpValidationError(ValueError):
    """A request that failed catalog validation (unknown operation,
    unknown sheet/workbook, missing or mistyped parameter)."""


_SHEET = {
    "type": "string",
    "description": "Sheet name; the workbook's active sheet when omitted.",
}
_CELL = {"type": "string", "description": "A1-style cell reference, e.g. 'B7'."}
_SCALAR = ["string", "number", "boolean", "null"]
_COUNT = {
    "type": "integer",
    "description": "How many rows/columns the edit spans.",
    "minimum": 1,
    "default": 1,
}

TOOL_CATALOG: list[dict] = [
    {
        "name": "get_cell",
        "description": (
            "Read one cell: its current value plus a staleness flag "
            "(true while a deferred recomputation is still pending)."
        ),
        "read_only": True,
        "parameters": {
            "type": "object",
            "properties": {"cell": _CELL, "sheet": _SHEET},
            "required": ["cell"],
        },
    },
    {
        "name": "get_range",
        "description": (
            "Read a rectangular range as a row-major grid of values, "
            "with a count of cells still awaiting recomputation."
        ),
        "read_only": True,
        "parameters": {
            "type": "object",
            "properties": {
                "range_ref": {
                    "type": "string",
                    "description": "A1-style range, e.g. 'A1:D20'.",
                },
                "sheet": _SHEET,
            },
            "required": ["range_ref"],
        },
    },
    {
        "name": "summarize_sheet",
        "description": (
            "Describe one sheet: populated-cell and formula counts, the "
            "used extent, and how many cells are pending recomputation."
        ),
        "read_only": True,
        "parameters": {
            "type": "object",
            "properties": {"sheet": _SHEET},
            "required": [],
        },
    },
    {
        "name": "set_cell",
        "description": (
            "Write one literal value. Returns at the control-return "
            "point: dependents are marked stale, not yet recomputed."
        ),
        "read_only": False,
        "parameters": {
            "type": "object",
            "properties": {
                "cell": _CELL,
                "value": {
                    "type": _SCALAR,
                    "description": "The literal to store (null clears to empty).",
                },
                "sheet": _SHEET,
            },
            "required": ["cell", "value"],
        },
    },
    {
        "name": "set_formula",
        "description": (
            "Install or replace a formula. Graph maintenance plus one "
            "dependents BFS, then control returns; the cell and its "
            "dependents recompute in the background."
        ),
        "read_only": False,
        "parameters": {
            "type": "object",
            "properties": {
                "cell": _CELL,
                "formula": {
                    "type": "string",
                    "description": "Formula source, e.g. '=SUM(A1:A9)'.",
                },
                "sheet": _SHEET,
            },
            "required": ["cell", "formula"],
        },
    },
    {
        "name": "clear_cell",
        "description": (
            "Erase one cell, dropping its graph edges and marking its "
            "dependents stale."
        ),
        "read_only": False,
        "parameters": {
            "type": "object",
            "properties": {"cell": _CELL, "sheet": _SHEET},
            "required": ["cell"],
        },
    },
    {
        "name": "batch_edit",
        "description": (
            "Apply many edits as one commit: maintenance and the "
            "dependents BFS are paid once for the whole batch, and the "
            "journal carries it as a single record."
        ),
        "read_only": False,
        "parameters": {
            "type": "object",
            "properties": {
                "edits": {
                    "type": "array",
                    "description": (
                        "Edit objects, each {'op': 'set_value'|'set_formula'"
                        "|'clear_cell'|'clear_range', 'cell': 'A1' (or "
                        "'range_ref': 'A1:B9' for clear_range), plus "
                        "'value' or 'formula' as the op requires}."
                    ),
                },
                "sheet": _SHEET,
            },
            "required": ["edits"],
        },
    },
    {
        "name": "insert_rows",
        "description": "Insert blank rows, shifting cells and rewriting references.",
        "read_only": False,
        "parameters": {
            "type": "object",
            "properties": {
                "row": {"type": "integer", "description": "1-based insertion row.", "minimum": 1},
                "count": _COUNT,
                "sheet": _SHEET,
            },
            "required": ["row"],
        },
    },
    {
        "name": "delete_rows",
        "description": "Delete rows; references into the band become #REF!.",
        "read_only": False,
        "parameters": {
            "type": "object",
            "properties": {
                "row": {"type": "integer", "description": "1-based first row to delete.", "minimum": 1},
                "count": _COUNT,
                "sheet": _SHEET,
            },
            "required": ["row"],
        },
    },
    {
        "name": "insert_columns",
        "description": "Insert blank columns, shifting cells and rewriting references.",
        "read_only": False,
        "parameters": {
            "type": "object",
            "properties": {
                "col": {"type": "integer", "description": "1-based insertion column.", "minimum": 1},
                "count": _COUNT,
                "sheet": _SHEET,
            },
            "required": ["col"],
        },
    },
    {
        "name": "delete_columns",
        "description": "Delete columns; references into the band become #REF!.",
        "read_only": False,
        "parameters": {
            "type": "object",
            "properties": {
                "col": {"type": "integer", "description": "1-based first column to delete.", "minimum": 1},
                "count": _COUNT,
                "sheet": _SHEET,
            },
            "required": ["col"],
        },
    },
    {
        "name": "recalculate",
        "description": (
            "Drain every pending deferred recomputation in the workbook "
            "(a write-serialized barrier: it queues behind earlier "
            "writes, and later reads see fully fresh values)."
        ),
        "read_only": False,
        "parameters": {
            "type": "object",
            "properties": {"sheet": _SHEET},
            "required": [],
        },
    },
]

#: Name -> catalog entry, for dispatch.
CATALOG: dict[str, dict] = {entry["name"]: entry for entry in TOOL_CATALOG}

_TYPE_CHECKS = {
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
    "array": lambda v: isinstance(v, list),
    "object": lambda v: isinstance(v, dict),
}


def _type_ok(value, spec_type) -> bool:
    types = spec_type if isinstance(spec_type, list) else [spec_type]
    return any(_TYPE_CHECKS[t](value) for t in types)


def validate_op(name: str, params: dict | None) -> dict:
    """Check one request against the catalog; returns the parameters
    with schema defaults filled in.  Raises :class:`OpValidationError`
    on any mismatch, before anything touches a workbook."""
    entry = CATALOG.get(name)
    if entry is None:
        raise OpValidationError(
            f"unknown operation {name!r}; the catalog has {sorted(CATALOG)}"
        )
    schema = entry["parameters"]
    props = schema["properties"]
    params = dict(params or {})
    for key in params:
        if key not in props:
            raise OpValidationError(f"{name}: unknown parameter {key!r}")
    for key in schema.get("required", ()):
        if key not in params:
            raise OpValidationError(f"{name}: missing required parameter {key!r}")
    for key, value in params.items():
        spec = props[key]
        if "type" in spec and not _type_ok(value, spec["type"]):
            raise OpValidationError(
                f"{name}: parameter {key!r} expects {spec['type']}, "
                f"got {type(value).__name__}"
            )
        if "minimum" in spec and value is not None and value < spec["minimum"]:
            raise OpValidationError(
                f"{name}: parameter {key!r} must be >= {spec['minimum']}, got {value}"
            )
    for key, spec in props.items():
        if key not in params and "default" in spec:
            params[key] = spec["default"]
    return params
