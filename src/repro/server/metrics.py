"""Per-operation and pool-level metrics for the workbook service.

One :class:`ServiceMetrics` per service, fed from the op dispatch path
(latency, control-return time, queue depth at submission) and the
residency pool (evictions, re-admissions, journal records, background
cells pumped).  ``snapshot()`` renders everything as plain dicts for
logging, the CLI, and the benchmark artifact.
"""

from __future__ import annotations

import time

__all__ = ["OpMetrics", "ServiceMetrics"]


class OpMetrics:
    """Rolling counters for one catalog operation."""

    __slots__ = (
        "count", "errors", "total_seconds", "max_seconds",
        "total_control_return", "control_samples",
    )

    def __init__(self):
        self.count = 0
        self.errors = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0
        self.total_control_return = 0.0
        self.control_samples = 0

    def record(self, seconds: float, *, control_return: float | None = None,
               error: bool = False) -> None:
        self.count += 1
        if error:
            self.errors += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        if control_return is not None:
            self.total_control_return += control_return
            self.control_samples += 1

    def summary(self) -> dict:
        out = {
            "count": self.count,
            "errors": self.errors,
            "mean_seconds": self.total_seconds / self.count if self.count else 0.0,
            "max_seconds": self.max_seconds,
        }
        if self.control_samples:
            out["mean_control_return_seconds"] = (
                self.total_control_return / self.control_samples
            )
        return out


class ServiceMetrics:
    """Service-wide counters: per-op latencies, queue depths, pool churn."""

    def __init__(self):
        self.started = time.perf_counter()
        self.ops: dict[str, OpMetrics] = {}
        self.evictions = 0
        self.readmissions = 0
        self.cold_admissions = 0
        #: Journals found superseded by a newer snapshot at admission
        #: (an eviction that crashed between its snapshot write and its
        #: journal rotation) and rotated to catch up.
        self.rotation_repairs = 0
        self.journal_records = 0
        self.background_cells = 0
        self.queue_samples = 0
        self.queue_depth_total = 0
        self.max_queue_depth = 0

    def op(self, name: str) -> OpMetrics:
        stats = self.ops.get(name)
        if stats is None:
            stats = self.ops[name] = OpMetrics()
        return stats

    def sample_queue_depth(self, depth: int) -> None:
        self.queue_samples += 1
        self.queue_depth_total += depth
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    def snapshot(self) -> dict:
        elapsed = time.perf_counter() - self.started
        total_ops = sum(stats.count for stats in self.ops.values())
        return {
            "elapsed_seconds": elapsed,
            "total_ops": total_ops,
            "ops_per_second": total_ops / elapsed if elapsed > 0 else 0.0,
            "per_op": {name: stats.summary() for name, stats in sorted(self.ops.items())},
            "evictions": self.evictions,
            "readmissions": self.readmissions,
            "cold_admissions": self.cold_admissions,
            "rotation_repairs": self.rotation_repairs,
            "journal_records": self.journal_records,
            "background_cells": self.background_cells,
            "mean_queue_depth": (
                self.queue_depth_total / self.queue_samples if self.queue_samples else 0.0
            ),
            "max_queue_depth": self.max_queue_depth,
        }
