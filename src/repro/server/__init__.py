"""Multi-tenant asyncio workbook service.

:class:`WorkbookService` hosts many workbooks under one event loop:
per-workbook write serialization through a single writer task,
queue-free snapshot-consistent reads, deferred recomputation pumped in
the background, and an LRU of resident workbooks that evicts cold ones
to snapshot + journal and re-admits them via the restore fast path.
The operation surface is a typed catalog (:data:`TOOL_CATALOG`), every
request passing :func:`validate_op` before it touches a workbook.
"""

from .catalog import CATALOG, TOOL_CATALOG, OpValidationError, validate_op
from .metrics import OpMetrics, ServiceMetrics
from .service import WorkbookService

__all__ = [
    "CATALOG",
    "OpMetrics",
    "OpValidationError",
    "ServiceMetrics",
    "TOOL_CATALOG",
    "WorkbookService",
    "validate_op",
]
