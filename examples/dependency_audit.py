"""Formula dependency auditing — the paper's second application.

Spreadsheet systems offer "trace precedents/dependents" tools to help
users find the sources of errors (the paper cites the EuSpRIG horror
stories).  This example builds a small financial model, plants a wrong
input, and uses the compressed graph to trace (a) everything the bad
cell corrupts and (b) everything a suspicious output depends on —
the TACO-Lens-style audit.

Run with:  python examples/dependency_audit.py
"""

from repro import Range, Sheet, build_from_sheet, fill_formula_column
from repro.engine.recalc import RecalcEngine


def build_model() -> Sheet:
    """A loan model: rates in B, balances in C, payments in D."""
    sheet = Sheet("loan")
    sheet.set_value("A1", 100_000.0)       # principal
    sheet.set_value("B1", 0.004)           # monthly rate ... oops, see main()
    for row in range(1, 25):
        sheet.set_value((5, row), 1200.0)  # E: fixed payment
    sheet.set_formula("C1", "=A1")
    fill_formula_column(sheet, 3, 2, 24, "=C1*(1+$B$1)-E1")   # balance chain
    fill_formula_column(sheet, 4, 1, 24, "=C1*$B$1")          # interest col
    sheet.set_formula("F1", "=SUM(D1:D24)")                   # total interest
    return sheet


def show_ranges(title: str, ranges: list[Range]) -> None:
    print(f"  {title}:")
    for rng in sorted(ranges, key=Range.as_tuple):
        print(f"    - {rng.to_a1()} ({rng.size} cell{'s' if rng.size != 1 else ''})")


def main() -> None:
    sheet = build_model()
    graph = build_from_sheet(sheet)
    engine = RecalcEngine(sheet, graph)
    engine.recalculate_all()

    print("Loan model: balance chain C1:C24, interest D1:D24, total F1")
    print(f"graph: {graph.raw_edge_count()} dependencies in {len(graph)} edges\n")

    # Audit 1: the analyst suspects the rate cell B1 is wrong.
    # What would a fix touch?
    print("Audit 1 — trace dependents of the rate cell $B$1")
    dependents = graph.find_dependents(Range.from_a1("B1"))
    show_ranges("cells recomputed if B1 changes", dependents)

    # Audit 2: the total interest F1 looks off. What feeds it?
    print("\nAudit 2 — trace precedents of the total F1")
    precedents = graph.find_precedents(Range.from_a1("F1"))
    show_ranges("cells F1 (transitively) reads", precedents)

    # Fix the rate and watch the update flow through.
    print("\nFixing B1: 0.004 -> 0.005 (the intended 6% APR)")
    before = sheet.get_value("F1")
    result = engine.set_value("B1", 0.005)
    after = sheet.get_value("F1")
    print(f"  dirty cells: {result.dirty_count}, recomputed: {result.recomputed}")
    print(f"  total interest F1: {before:,.2f} -> {after:,.2f}")


if __name__ == "__main__":
    main()
