"""Structural edits and graph persistence.

A host spreadsheet system must keep the formula graph consistent when
users insert or delete whole rows — and should not pay the compression
cost twice when a file is reopened.  This example exercises both: rows
are inserted into a live ledger (the compressed graph is maintained
in place and checked against a rebuild), then the graph is saved to
JSON and reloaded.

Run with:  python examples/structural_edits.py
"""

import io

from repro import Range, Sheet, build_from_sheet, dependencies_column_major, fill_formula_column
from repro.core import structural as graph_structural
from repro.core.serialize import dumps_graph, loads_graph
from repro.core.taco_graph import TacoGraph
from repro.sheet import structural as sheet_structural

ROWS = 400


def build_ledger() -> Sheet:
    sheet = Sheet("ledger")
    for row in range(1, ROWS + 1):
        sheet.set_value((1, row), float(row % 12))          # A: month
        sheet.set_value((2, row), round(17.5 + row, 2))     # B: amount
    sheet.set_formula("C1", "=B1")
    fill_formula_column(sheet, 3, 2, ROWS, "=C1+B2")        # running balance
    fill_formula_column(sheet, 4, 1, ROWS, "=B1*$B$1")      # indexed amount
    return sheet


def main() -> None:
    sheet = build_ledger()
    graph = build_from_sheet(sheet)
    print(f"ledger: {graph.raw_edge_count()} dependencies in {len(graph)} edges")

    # --- structural edit: insert 5 rows in the middle ---------------------
    print("\ninserting 5 rows before row 200 ...")
    graph_structural.insert_rows(graph, 200, 5)
    sheet_structural.insert_rows(sheet, 200, 5)

    rebuilt = TacoGraph.full()
    rebuilt.build(dependencies_column_major(sheet))
    incremental = {(d.prec.to_a1(), d.dep.to_a1()) for d in graph.decompress()}
    from_scratch = {(d.prec.to_a1(), d.dep.to_a1()) for d in rebuilt.decompress()}
    assert incremental == from_scratch
    print(f"maintained graph matches a rebuild: OK ({len(graph)} edges)")

    # Dependencies below the edit shifted; a query shows the new geometry.
    dependents = graph.find_dependents(Range.from_a1("B300"))
    print(f"dependents of B300 after the edit: {[r.to_a1() for r in dependents]}")

    # --- persistence -------------------------------------------------------
    print("\nserialising the compressed graph ...")
    payload = dumps_graph(graph)
    print(f"JSON size: {len(payload):,} bytes for {graph.raw_edge_count()} dependencies")
    restored = loads_graph(io.StringIO(payload).read())
    assert len(restored) == len(graph)
    probe = Range.from_a1("B10")
    assert [r.to_a1() for r in restored.find_dependents(probe)] == [
        r.to_a1() for r in graph.find_dependents(probe)
    ]
    print("reloaded graph answers queries identically: OK")


if __name__ == "__main__":
    main()
