"""Structural edits end-to-end, and graph persistence.

A host spreadsheet system must keep the formula graph consistent when
users insert or delete whole rows — and should not pay the compression
cost twice when a file is reopened.  This example exercises the whole
pipeline: rows are inserted into a live multi-sheet ledger through
``RecalcEngine.insert_rows`` (sheet rewrite + incremental graph
maintenance + dirty recalculation in one call), a band of rows is then
deleted so references into it collapse to ``#REF!``, and finally the
maintained graph is saved to JSON and reloaded.

Run with:  python examples/structural_edits.py
"""

from repro import Range, build_from_sheet, dependencies_column_major, fill_formula_column
from repro.core.serialize import dumps_graph, loads_graph
from repro.core.taco_graph import TacoGraph
from repro.engine import RecalcEngine
from repro.formula.errors import REF_ERROR
from repro.sheet.workbook import Workbook

ROWS = 400


def build_ledger() -> Workbook:
    workbook = Workbook("ledger")
    sheet = workbook.add_sheet("Ledger")
    for row in range(1, ROWS + 1):
        sheet.set_value((1, row), float(row % 12))          # A: month
        sheet.set_value((2, row), round(17.5 + row, 2))     # B: amount
    sheet.set_formula("C1", "=B1")
    fill_formula_column(sheet, 3, 2, ROWS, "=C1+B2")        # running balance
    fill_formula_column(sheet, 4, 1, ROWS, "=B1*$B$1")      # indexed amount
    summary = workbook.add_sheet("Summary")
    summary.set_formula("A1", f"=Ledger!C{ROWS}")           # closing balance
    summary.set_formula("A2", "=Ledger!B250*2")             # one mid-ledger probe
    return workbook


def main() -> None:
    workbook = build_ledger()
    sheet = workbook.sheet("Ledger")
    engine = RecalcEngine(sheet)
    engine.recalculate_all()
    graph = engine.graph
    print(f"ledger: {graph.raw_edge_count()} dependencies in {len(graph)} edges")

    # --- insert 5 rows in the middle, end-to-end --------------------------
    print("\ninserting 5 rows before row 200 ...")
    result = engine.insert_rows(200, 5, workbook=workbook)
    print(
        f"moved {result.moved_cells} cells, rewrote {result.rewritten_formulas} "
        f"formulas ({result.cross_sheet_rewrites} on other sheets), "
        f"recomputed {result.recomputed} dirty cells"
    )
    m = result.maintenance
    print(
        f"graph maintenance: {m.shifted} edges shifted, {m.split} split in "
        f"place, {m.decompressed} decompressed, {m.reinserted} re-inserted"
    )
    # The cross-sheet reference followed the shift; the closing balance moved.
    summary = workbook.sheet("Summary")
    assert summary.cell_at("A1").formula_text == f"Ledger!C{ROWS + 5}"

    rebuilt = TacoGraph.full()
    rebuilt.build(dependencies_column_major(sheet))
    incremental = {(d.prec.to_a1(), d.dep.to_a1()) for d in graph.decompress()}
    from_scratch = {(d.prec.to_a1(), d.dep.to_a1()) for d in rebuilt.decompress()}
    assert incremental == from_scratch
    print(f"maintained graph matches a rebuild: OK ({len(graph)} edges)")

    # Dependencies below the edit shifted; a query shows the new geometry.
    dependents = graph.find_dependents(Range.from_a1("B300"))
    print(f"dependents of B300 after the edit: {sorted(r.to_a1() for r in dependents)}")

    # --- delete the rows back out, striking references --------------------
    print("\ndeleting rows 200-204 again ...")
    result = engine.delete_rows(200, 5, workbook=workbook)
    print(
        f"removed {result.removed_cells} cells, {result.ref_errors} formulas "
        f"struck to #REF!, recomputed {result.recomputed}"
    )
    assert sheet.get_value("C1") is not None

    # A reference straight into a deleted band collapses to #REF! ...
    engine.set_formula("F1", f"=B{ROWS}")
    result = engine.delete_rows(ROWS - 1, 2, workbook=workbook)
    assert sheet.get_value("F1") is REF_ERROR
    print(f"F1 after deleting its referenced rows: {sheet.get_value('F1')}")

    # --- persistence -------------------------------------------------------
    print("\nserialising the compressed graph ...")
    payload = dumps_graph(engine.graph)
    print(f"JSON size: {len(payload):,} bytes for {engine.graph.raw_edge_count()} dependencies")
    restored = loads_graph(payload)
    assert len(restored) == len(engine.graph)
    probe_range = Range.from_a1("B10")
    assert sorted(r.to_a1() for r in restored.find_dependents(probe_range)) == sorted(
        r.to_a1() for r in engine.graph.find_dependents(probe_range)
    )
    print("reloaded graph answers queries identically: OK")


if __name__ == "__main__":
    main()
