"""Batched editing: pay maintenance and recalculation once per burst.

A monthly reporting sheet receives a burst of edits — a re-imported data
column plus a handful of formula fixes.  The example applies the same
burst twice, per-edit and through a :class:`BatchEditSession`
(``engine.begin_batch()``), and reports what each path paid.  This
mirrors the walkthrough in ``docs/api.md``.

Run with:  python examples/batch_editing.py
"""

import random
import time

from repro import Sheet, fill_formula_column
from repro.engine.recalc import RecalcEngine

# Modest by default: the per-edit path is quadratic here (every edit
# re-evaluates the running-total suffix), which is exactly the point.
ROWS = 600


def build_report_sheet() -> Sheet:
    """Units in A, unit prices in B, revenue in C, running total in D."""
    rng = random.Random(11)
    sheet = Sheet("report")
    for row in range(1, ROWS + 1):
        sheet.set_value((1, row), float(rng.randrange(1, 50)))          # A
        sheet.set_value((2, row), round(rng.uniform(5, 120), 2))        # B
    fill_formula_column(sheet, 3, 1, ROWS, "=A1*B1")                    # C
    sheet.set_formula("D1", "=C1")
    fill_formula_column(sheet, 4, 2, ROWS, "=D1+C2")                    # D
    sheet.set_formula("F1", f"=SUM(C1:C{ROWS})")                        # total
    return sheet


def edit_burst():
    """The re-import: fresh unit counts for every row + 3 formula fixes."""
    rng = random.Random(99)
    for row in range(1, ROWS + 1):
        yield ("value", (1, row), float(rng.randrange(1, 50)))
    for row in (10, ROWS // 2, ROWS - 1):
        yield ("formula", (3, row), f"=A{row}*B{row}*0.9")   # discounted rows


def run_per_edit() -> tuple[float, int]:
    engine = RecalcEngine(build_report_sheet())
    engine.recalculate_all()
    start = time.perf_counter()
    recomputed = 0
    for kind, pos, payload in edit_burst():
        if kind == "value":
            recomputed += engine.set_value(pos, payload).recomputed
        else:
            recomputed += engine.set_formula(pos, payload).recomputed
    return time.perf_counter() - start, recomputed


def run_batched() -> tuple[float, int, object]:
    engine = RecalcEngine(build_report_sheet())
    engine.recalculate_all()
    start = time.perf_counter()
    with engine.begin_batch() as batch:
        for kind, pos, payload in edit_burst():
            if kind == "value":
                batch.set_value(pos, payload)
            else:
                batch.set_formula(pos, payload)
    result = batch.result
    return time.perf_counter() - start, result.recomputed, result


def main() -> None:
    per_edit_s, per_edit_evals = run_per_edit()
    batched_s, batched_evals, result = run_batched()

    print(f"burst: {ROWS + 3} edits on a {ROWS}-row sheet "
          f"({ROWS * 2 + 2} formula cells)\n")
    print(f"per-edit : {per_edit_s * 1000:8.1f} ms, "
          f"{per_edit_evals} cell evaluations")
    print(f"batched  : {batched_s * 1000:8.1f} ms, "
          f"{batched_evals} cell evaluations")
    print(f"\nbatch pipeline: {result.ops} ops coalesced to "
          f"{result.coalesced_cells} cells in {len(result.cleared_ranges)} "
          f"ranges; {result.edges_touched} compressed edges touched, "
          f"indexes repacked: {result.repacked}")
    print(f"speedup: {per_edit_s / batched_s:.1f}x "
          f"({per_edit_evals / max(batched_evals, 1):.0f}x fewer evaluations)")


if __name__ == "__main__":
    main()
