"""Compression report for an xlsx file — the full paper pipeline.

Writes a realistic workbook to a real ``.xlsx`` file (or takes one on the
command line), reads it back through the stdlib SpreadsheetML reader,
builds NoComp / TACO-InRow / TACO-Full graphs for every sheet, and prints
a per-sheet and per-pattern compression report — a single-file version of
the paper's Tables II-V.

Run with:  python examples/xlsx_compression_report.py [file.xlsx]
"""

import random
import sys
import tempfile

from repro import NoCompGraph, TacoGraph, Workbook, dependencies_column_major
from repro.bench.reporting import ascii_table, format_pct
from repro.datasets.regions import build_region
from repro.io import read_xlsx, write_xlsx


def make_demo_file(path: str) -> None:
    """A three-sheet workbook mixing the paper's formula idioms."""
    rng = random.Random(7)
    workbook = Workbook("demo")
    forecast = workbook.add_sheet("Forecast")
    build_region(forecast, "sliding_window", 1, 2, 400, rng)
    build_region(forecast, "chain", 8, 2, 300, rng)
    ledger = workbook.add_sheet("Ledger")
    build_region(ledger, "fig2", 1, 2, 500, rng)
    build_region(ledger, "running_total", 8, 2, 350, rng)
    lookups = workbook.add_sheet("Lookups")
    build_region(lookups, "fixed_lookup", 1, 2, 250, rng)
    build_region(lookups, "noise", 8, 2, 40, rng)
    write_xlsx(workbook, path)


def report(path: str) -> None:
    workbook = read_xlsx(path)
    print(f"workbook: {path}")
    print(f"sheets  : {', '.join(workbook.sheet_names)}\n")

    rows = []
    pattern_rows: dict[str, int] = {}
    for sheet in workbook.sheets():
        deps = dependencies_column_major(sheet)
        if not deps:
            continue
        nocomp = NoCompGraph()
        nocomp.build(deps)
        inrow = TacoGraph.inrow()
        inrow.build(deps)
        full = TacoGraph.full()
        full.build(deps)
        rows.append([
            sheet.name,
            len(deps),
            len(inrow),
            len(full),
            format_pct(len(full) / len(deps)),
        ])
        for name, info in full.pattern_breakdown().items():
            pattern_rows[name] = pattern_rows.get(name, 0) + info["reduced"]

    print(ascii_table(
        ["sheet", "raw deps", "TACO-InRow", "TACO-Full", "remaining"], rows
    ))
    print("\nedges reduced per pattern (Table V style):")
    print(ascii_table(
        ["pattern", "edges reduced"],
        sorted(pattern_rows.items(), key=lambda kv: -kv[1]),
    ))


def main() -> None:
    if len(sys.argv) > 1:
        report(sys.argv[1])
        return
    with tempfile.NamedTemporaryFile(suffix=".xlsx", delete=False) as handle:
        path = handle.name
    make_demo_file(path)
    report(path)


if __name__ == "__main__":
    main()
