"""Quickstart: build, compress, query, and maintain a formula graph.

Run with:  python examples/quickstart.py
"""

from repro import (
    NoCompGraph,
    Range,
    Sheet,
    build_from_sheet,
    dependencies_column_major,
    expand_cells,
    fill_formula_column,
)


def main() -> None:
    # 1. Build a sheet the way users do: data columns + autofilled formulae.
    sheet = Sheet("demo")
    for row in range(1, 101):
        sheet.set_value((1, row), float(row))          # column A: data
        sheet.set_value((2, row), float(row % 10))     # column B: data

    # A sliding window (RR), a running total (FR), and a fixed lookup (FF).
    fill_formula_column(sheet, 3, 1, 98, "=SUM(A1:B3)")
    fill_formula_column(sheet, 4, 1, 100, "=SUM($A$1:A1)")
    fill_formula_column(sheet, 5, 1, 100, "=B1*$A$100")

    # 2. Compress the formula graph with TACO.
    taco = build_from_sheet(sheet)
    raw = taco.raw_edge_count()
    print(f"raw dependencies : {raw}")
    print(f"compressed edges : {len(taco)}  ({len(taco) / raw:.2%} of raw)")
    for edge in sorted(taco.edges(), key=lambda e: e.dep.as_tuple()):
        print(f"  {edge.describe()}")

    # 3. Query it — directly on the compressed form, no decompression.
    probe = Range.from_a1("A50")
    dependents = taco.find_dependents(probe)
    print(f"\ndependents of {probe}: {[r.to_a1() for r in dependents]}")
    precedents = taco.find_precedents(Range.from_a1("D50"))
    print(f"precedents of D50: {[r.to_a1() for r in precedents]}")

    # 4. The answers match the uncompressed baseline exactly.
    nocomp = NoCompGraph()
    nocomp.build(dependencies_column_major(sheet))
    assert expand_cells(taco.find_dependents(probe)) == expand_cells(
        nocomp.find_dependents(probe)
    )
    print("\nTACO's answers match NoComp: OK")

    # 5. Incremental maintenance: clear some formulae and re-query.
    taco.clear_cells(Range.from_a1("C40:C60"))
    print(f"after clearing C40:C60 -> {len(taco)} edges")
    dependents = taco.find_dependents(probe)
    print(f"dependents of {probe} now: {[r.to_a1() for r in dependents]}")


if __name__ == "__main__":
    main()
