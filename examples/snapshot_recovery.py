"""Crash-safe workbooks: snapshot, write-ahead journal, recovery.

A ledger service snapshots each workbook once (values + formula source +
the *compressed* formula graph), then journals every committed edit.
The example walks the whole lifecycle:

1. build and calculate a ledger, snapshot it;
2. journal an editing session — cell edits, one batched burst, one
   structural insert;
3. reopen from snapshot + journal and verify it matches the live book;
4. "crash" mid-append (tear the journal's last record) and show that
   recovery cuts the torn tail at the last complete record instead of
   failing — exactly the prefix of committed operations survives.

Run with:  python examples/snapshot_recovery.py
"""

import os
import tempfile
import time

from repro.core.taco_graph import build_from_sheet
from repro.engine.journal import Journal
from repro.engine.recalc import RecalcEngine
from repro.sheet.autofill import fill_formula_column
from repro.sheet.workbook import Workbook

ROWS = 2000


def build_ledger() -> tuple[Workbook, RecalcEngine]:
    book = Workbook("ledger")
    sheet = book.add_sheet("Main")
    for r in range(1, ROWS + 1):
        sheet.set_value((1, r), float((r * 31) % 101))          # A amounts
        sheet.set_value((2, r), float((r * 17) % 13) + 1.0)     # B rates
    fill_formula_column(sheet, 3, 1, ROWS, "=A1*B1")            # C revenue
    sheet.set_formula("D1", "=C1")
    fill_formula_column(sheet, 4, 2, ROWS, "=D1+C2")            # D running total
    sheet.set_formula("F1", f"=SUM(C1:C{ROWS})")
    engine = RecalcEngine(sheet, build_from_sheet(sheet))
    engine.recalculate_all()
    return book, engine


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="snapshot-recovery-")
    snap_path = os.path.join(workdir, "ledger.snap")
    wal_path = os.path.join(workdir, "ledger.wal")

    # 1. The one-off costs, paid once and persisted.
    book, engine = build_ledger()
    stats = book.snapshot(snap_path, {"Main": engine.graph})
    print(f"snapshot: {stats.cells:,} cells, {stats.edges} compressed edges, "
          f"{stats.bytes_written:,} bytes -> {snap_path}")

    # 2. A journaled editing session.
    engine.journal = Journal(wal_path, truncate=True)
    engine.set_value("A100", 9999.0)
    with engine.begin_batch(workbook=book) as batch:
        for r in range(10, 20):
            batch.set_value((2, r), 2.5)
        batch.set_formula("G1", "=SUM(C1:C100)")
    engine.insert_rows(ROWS - 5, 2, workbook=book)
    engine.set_value("B3", 4.0)
    engine.journal.close()
    print(f"journal: {engine.journal.records_written} committed records "
          f"({os.path.getsize(wal_path):,} bytes)")

    # 3. Reopen: no parse, no compression, no full recalc.
    start = time.perf_counter()
    result = Workbook.restore(snap_path, wal_path)
    elapsed = time.perf_counter() - start
    live = {pos: cell.value for pos, cell in engine.sheet.items()}
    restored = {pos: cell.value
                for pos, cell in result.workbook["Main"].items()}
    assert restored == live, "restore must equal the live workbook"
    print(f"restore:  {result.records_applied} records replayed, "
          f"{result.recomputed:,} of {len(live):,} cells recomputed "
          f"in {elapsed * 1000:.1f} ms — matches the live book")

    # 4. Crash mid-append: tear the last record and recover the prefix.
    data = open(wal_path, "rb").read()
    with open(wal_path, "wb") as handle:
        handle.write(data[:-9])
    partial = Workbook.restore(snap_path, wal_path)
    print(f"torn journal: tail cut, {partial.records_applied} of "
          f"{result.records_applied} records recovered "
          f"(torn_tail={partial.torn_tail})")
    assert partial.torn_tail
    assert partial.records_applied == result.records_applied - 1
    # The recovered book is exactly the live book *before* the last edit.
    assert partial.workbook["Main"].get_value("B3") != 4.0
    print("recovered state == the committed prefix, byte-for-byte semantics")


if __name__ == "__main__":
    main()
