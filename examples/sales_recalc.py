"""Interactive recalculation: the paper's motivating application.

A sales workbook in the style of the paper's Fig. 2 — transactions
sorted by counterparty with a running subtotal column — is edited, and
the engine must find the dependents of the edit (the critical path for
returning control to the user) and recompute them.

The example runs the same edit against a TACO-backed engine and a
NoComp-backed one and reports the control-return times.

Run with:  python examples/sales_recalc.py
"""

import random

from repro import NoCompGraph, Sheet, dependencies_column_major, fill_formula_column
from repro.engine.recalc import RecalcEngine

ROWS = 3000


def build_sales_sheet() -> Sheet:
    """Counterparty ids in A, amounts in M, running subtotal in N."""
    rng = random.Random(42)
    sheet = Sheet("sales")
    for row in range(1, ROWS + 1):
        sheet.set_value((1, row), float(rng.randrange(40)))       # A: CP id
        sheet.set_value((13, row), round(rng.uniform(10, 900), 2))  # M: amount
    sheet.set_formula((14, 2), "=M2")
    fill_formula_column(sheet, 14, 3, ROWS, "=IF(A3=A2,N2+M3,M3)")
    return sheet


def run_engine(label: str, engine: RecalcEngine) -> None:
    engine.recalculate_all()
    before = engine.sheet.get_value((14, ROWS))
    result = engine.set_value((13, 2), 10_000.0)   # edit M2: feeds the chain
    after = engine.sheet.get_value((14, ROWS))
    print(f"[{label}]")
    print(f"  dirty cells found       : {result.dirty_count}")
    print(f"  control returned after  : {result.control_return_seconds * 1000:8.2f} ms")
    print(f"  full recompute finished : {result.total_seconds * 1000:8.2f} ms")
    print(f"  N{ROWS}: {before} -> {after}")


def main() -> None:
    print(f"sales sheet: {ROWS} rows, Fig. 2-style running subtotals\n")

    taco_engine = RecalcEngine(build_sales_sheet())  # TACO by default
    run_engine("TACO-backed engine", taco_engine)

    sheet = build_sales_sheet()
    nocomp = NoCompGraph()
    nocomp.build(dependencies_column_major(sheet))
    run_engine("NoComp-backed engine", RecalcEngine(sheet, nocomp))

    print(
        "\nThe dirty sets are identical; only the time to *find* them\n"
        "differs — that is the interactivity gap TACO closes."
    )


if __name__ == "__main__":
    main()
