"""What-if analysis over a budget dashboard, on the scenario engine.

A planning workbook where one assumptions block (growth rate, cost
ratio, FX rate — all ``$``-fixed FF references) drives ten years of
monthly projections.  What-if analysis hammers exactly the path the
paper optimises — every scenario must find the dependents of an
assumption cell before anything can be recomputed — and
:class:`repro.engine.ScenarioEngine` pays that path *once*: the dirty
frontier and its evaluation plan are shared by every scenario, each
replay just writes the trial values and re-executes the frozen plan,
and the sheet is restored bit-identically afterwards.

Run with:  python examples/whatif_dashboard.py
"""

import time

from repro import Sheet, fill_formula_column
from repro.engine import RecalcEngine, ScenarioEngine

MONTHS = 120  # ten years of monthly projections


def build_dashboard() -> Sheet:
    sheet = Sheet("plan", store="columnar")
    # Assumptions block (B1:B3) — fixed references from everywhere below.
    sheet.set_value("A1", "growth")
    sheet.set_value("B1", 1.02)
    sheet.set_value("A2", "cost ratio")
    sheet.set_value("B2", 0.62)
    sheet.set_value("A3", "fx")
    sheet.set_value("B3", 1.08)

    # Projection table from row 6: D revenue, E costs, F profit, G cum.
    sheet.set_value("D6", 1000.0)
    fill_formula_column(sheet, 4, 7, 5 + MONTHS, "=D6*$B$1")        # revenue chain
    fill_formula_column(sheet, 5, 6, 5 + MONTHS, "=D6*$B$2")        # costs
    fill_formula_column(sheet, 6, 6, 5 + MONTHS, "=(D6-E6)*$B$3")   # profit in EUR
    sheet.set_formula("G6", "=F6")
    fill_formula_column(sheet, 7, 7, 5 + MONTHS, "=G6+F7")          # cumulative
    sheet.set_formula("I1", f"=G{5 + MONTHS}")                      # headline KPI
    return sheet


def main() -> None:
    engine = RecalcEngine(build_dashboard())
    engine.recalculate_all()
    sheet = engine.sheet
    baseline = sheet.get_value("I1")
    print(f"dashboard: {MONTHS} months, {engine.graph.raw_edge_count()} "
          f"dependencies in {len(engine.graph)} compressed edges")
    print(f"baseline cumulative profit: {baseline:,.0f}\n")

    # One plan for every what-if on the assumptions block.
    whatif = ScenarioEngine(engine, ["B1", "B2", "B3"])
    print(f"shared plan: {whatif.plan_size} dirty cells, planned once\n")

    scenarios = {
        "optimistic growth": {"B1": 1.035},
        "cost blowout": {"B2": 0.75},
        "weak euro": {"B3": 0.95},
        "stagflation": {"B1": 1.005, "B2": 0.70},
    }
    results = whatif.run(scenarios.values(), outputs=["I1"])
    print(f"{'scenario':<20} {'KPI':>14} {'vs baseline':>12}")
    for label, result in zip(scenarios, results):
        kpi = result["I1"]
        print(f"{label:<20} {kpi:>14,.0f} {kpi / baseline - 1:>11.1%}")
    print(f"sheet restored: I1 still {sheet.get_value('I1'):,.0f}\n")

    # Monte Carlo over the same plan: uncertain growth and cost ratio.
    def draw(rng):
        return {"B1": rng.gauss(1.02, 0.008), "B2": rng.gauss(0.62, 0.03)}

    n = 500
    start = time.perf_counter()
    kpis = sorted(r["I1"] for r in whatif.sample(n, draw, outputs=["I1"], seed=7))
    elapsed = time.perf_counter() - start
    print(f"monte carlo ({n} draws in {elapsed * 1000:.0f} ms):")
    for label, q in (("p5", 0.05), ("median", 0.50), ("p95", 0.95)):
        print(f"  {label:<7} {kpis[int(q * (n - 1))]:>14,.0f}")
    reuses = engine.eval_stats.scenario_plan_reuses
    print(f"  plan reused {reuses} times instead of re-planning per draw\n")

    # Goal-seek on the shared plan: growth needed to double the baseline.
    growth = whatif.solve("B1", "I1", 2 * baseline, 1.0, 1.1, tol=1e-10)
    print(f"goal-seek: doubling cumulative profit needs growth = {growth:.4%}")


if __name__ == "__main__":
    main()
