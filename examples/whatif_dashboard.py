"""What-if analysis over a budget dashboard.

A planning workbook where one assumptions block (growth rate, cost
ratio, FX rate — all ``$``-fixed FF references) drives a year of monthly
projections.  What-if analysis hammers exactly the path the paper
optimises: every scenario tweak must find the dependents of an
assumption cell before anything can be recomputed.

Run with:  python examples/whatif_dashboard.py
"""

from repro import Range, Sheet, fill_formula_column
from repro.engine.recalc import RecalcEngine

MONTHS = 120  # ten years of monthly projections


def build_dashboard() -> Sheet:
    sheet = Sheet("plan")
    # Assumptions block (B1:B3) — fixed references from everywhere below.
    sheet.set_value("A1", "growth")
    sheet.set_value("B1", 1.02)
    sheet.set_value("A2", "cost ratio")
    sheet.set_value("B2", 0.62)
    sheet.set_value("A3", "fx")
    sheet.set_value("B3", 1.08)

    # Projection table from row 6: D revenue, E costs, F profit, G cum.
    sheet.set_value("D6", 1000.0)
    fill_formula_column(sheet, 4, 7, 5 + MONTHS, "=D6*$B$1")        # revenue chain
    fill_formula_column(sheet, 5, 6, 5 + MONTHS, "=D6*$B$2")        # costs
    fill_formula_column(sheet, 6, 6, 5 + MONTHS, "=(D6-E6)*$B$3")   # profit in EUR
    sheet.set_formula("G6", "=F6")
    fill_formula_column(sheet, 7, 7, 5 + MONTHS, "=G6+F7")          # cumulative
    sheet.set_formula("I1", f"=G{5 + MONTHS}")                      # headline KPI
    return sheet


def main() -> None:
    engine = RecalcEngine(build_dashboard())
    engine.recalculate_all()
    sheet = engine.sheet
    graph = engine.graph
    print(f"dashboard: {MONTHS} months, {graph.raw_edge_count()} dependencies "
          f"in {len(graph)} compressed edges")
    print(f"baseline cumulative profit: {sheet.get_value('I1'):,.0f}\n")

    scenarios = [
        ("optimistic growth", "B1", 1.035),
        ("cost blowout", "B2", 0.75),
        ("weak euro", "B3", 0.95),
    ]
    print(f"{'scenario':<20} {'KPI':>14} {'dirty':>7} {'find-deps':>10} {'total':>10}")
    for label, cell, value in scenarios:
        result = engine.set_value(cell, value)
        kpi = sheet.get_value("I1")
        print(
            f"{label:<20} {kpi:>14,.0f} {result.dirty_count:>7} "
            f"{result.control_return_seconds * 1000:>8.2f}ms "
            f"{result.total_seconds * 1000:>8.2f}ms"
        )

    # Show the blast radius of one assumption, straight off the graph.
    blast = graph.find_dependents(Range.from_a1("B1"))
    cells = sum(r.size for r in blast)
    print(f"\ngrowth-rate blast radius: {cells} cells in {len(blast)} ranges")
    for rng in sorted(blast, key=Range.as_tuple)[:8]:
        print(f"  - {rng.to_a1()}")


if __name__ == "__main__":
    main()
